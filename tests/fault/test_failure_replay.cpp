// The failure-replay harness: record a faulted run's JSONL trace, parse it
// back into a FaultReplayLog, and assert the realised fault history replays
// bitwise-identically at 1/2/4 worker threads. Also cross-checks the parsed
// totals against the engine's own fault counters and exercises the parser's
// error paths on malformed traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"
#include "fault/replay.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "obs/jsonl_writer.h"

namespace mach::hfl {
namespace {

ExperimentConfig replay_scenario(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 30;
  config.test_examples = 300;
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 2;
  config.hfl.participation = 0.6;
  config.horizon = 8;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

fault::FaultSchedule busy_schedule() {
  return fault::FaultSchedule::parse(
      "dropout:p=0.25;straggler:p=0.3,delay=1.5,timeout=1,backoff=0.5,"
      "retries=2;edge_timeout:edge=1,timeout=0.5;"
      "edge_outage:edge=0,from=2,to=4;cloud_loss:p=0.3;seed=77");
}

struct RecordedRun {
  std::string trace;  // raw JSONL, exactly as the writer emitted it
  std::uint64_t counter(const std::string& name) const {
    for (const auto& entry : snapshot.counters) {
      if (entry.name == name) return entry.value;
    }
    return 0;
  }
  obs::MetricsSnapshot snapshot;
};

RecordedRun record_run(const ExperimentArtifacts& artifacts,
                       const ExperimentConfig& config,
                       const fault::FaultSchedule& faults,
                       std::size_t threads) {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = threads;
  options.faults = faults;
  HflSimulator simulator(artifacts.train, artifacts.test, artifacts.partition,
                         artifacts.schedule, make_model_factory(config),
                         options);

  std::ostringstream trace_stream;
  obs::JsonlTraceOptions trace_options;
  trace_options.device_events = true;
  obs::JsonlTraceWriter trace(trace_stream, trace_options);
  simulator.set_observer(&trace);

  auto sampler = core::make_sampler("mach");
  simulator.run(*sampler, config.horizon);
  simulator.set_observer(nullptr);

  RecordedRun run;
  run.trace = trace_stream.str();
  run.snapshot = simulator.metrics_registry().snapshot();
  return run;
}

fault::FaultReplayLog parse(const std::string& trace) {
  std::istringstream stream(trace);
  return fault::parse_fault_log(stream);
}

TEST(FailureReplay, RecordedFaultHistoryReplaysAtAnyThreadCount) {
  const ExperimentConfig config = replay_scenario(61);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const fault::FaultSchedule schedule = busy_schedule();

  const RecordedRun recorded = record_run(artifacts, config, schedule, 1);
  const fault::FaultReplayLog log = parse(recorded.trace);

  // The recording is substantive: the spec is pinned in the trace and at
  // least one fault actually fired.
  ASSERT_FALSE(log.empty());
  ASSERT_EQ(log.specs.size(), 1u);
  EXPECT_EQ(log.specs[0], schedule.to_string());
  ASSERT_FALSE(log.edges.empty());
  const fault::FaultReplayLog::Totals totals = log.totals();
  EXPECT_GT(totals.dropped + totals.straggler_timeouts + totals.outage_rounds +
                totals.cloud_uploads_lost,
            0u)
      << "schedule never fired; replay comparison is vacuous";

  // Replay: the same schedule must realise the identical fault history under
  // concurrency — record-by-record, not just in aggregate.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RecordedRun replayed = record_run(artifacts, config, schedule, threads);
    EXPECT_EQ(parse(replayed.trace), log);
  }
}

TEST(FailureReplay, ParsedTotalsMatchTheEngineCounters) {
  const ExperimentConfig config = replay_scenario(62);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const RecordedRun run = record_run(artifacts, config, busy_schedule(), 1);
  const fault::FaultReplayLog::Totals totals = parse(run.trace).totals();

  EXPECT_EQ(totals.dropped, run.counter("fault_dropouts"));
  EXPECT_EQ(totals.straggler_arrivals, run.counter("fault_straggler_arrivals"));
  EXPECT_EQ(totals.straggler_timeouts, run.counter("fault_straggler_timeouts"));
  EXPECT_EQ(totals.retries, run.counter("fault_retries"));
  EXPECT_EQ(totals.outage_rounds, run.counter("fault_edge_outage_rounds"));
  EXPECT_EQ(totals.updates_lost, run.counter("fault_updates_lost"));
  EXPECT_EQ(totals.cloud_uploads_lost, run.counter("fault_cloud_uploads_lost"));
}

TEST(FailureReplay, PerRecordAccountingIsConsistent) {
  const ExperimentConfig config = replay_scenario(63);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const RecordedRun run = record_run(artifacts, config, busy_schedule(), 1);
  const fault::FaultReplayLog log = parse(run.trace);
  ASSERT_FALSE(log.edges.empty());
  for (const fault::EdgeFaultRecord& record : log.edges) {
    SCOPED_TRACE("t=" + std::to_string(record.t) +
                 " edge=" + std::to_string(record.edge));
    // Every sampled device either survived or was lost to exactly one cause.
    EXPECT_EQ(record.dropped + record.straggler_timeouts, record.lost.size());
    if (record.outage) {
      // An edge outage skips the round before sampling: nothing to report.
      EXPECT_TRUE(record.survivors.empty());
      EXPECT_TRUE(record.lost.empty());
      EXPECT_EQ(record.retries, 0u);
    }
    // Survivor/lost sets are disjoint id lists over the sampled devices.
    for (const std::uint64_t id : record.lost) {
      for (const std::uint64_t survivor : record.survivors) {
        EXPECT_NE(id, survivor);
      }
    }
  }
}

TEST(FailureReplay, FaultFreeTraceParsesToAnEmptyLog) {
  const ExperimentConfig config = replay_scenario(64);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const RecordedRun run =
      record_run(artifacts, config, fault::FaultSchedule{}, 1);
  EXPECT_TRUE(parse(run.trace).empty());
}

TEST(FailureReplay, MalformedTracesFailWithTheLineNumber) {
  const auto expect_error = [](const std::string& trace,
                               const std::string& needle) {
    SCOPED_TRACE(trace);
    try {
      std::istringstream stream(trace);
      fault::parse_fault_log(stream);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };

  // Broken JSON on the second line is reported as line 2.
  expect_error("{\"event\":\"run_begin\"}\n{\"event\":\"edge_agg\",\n",
               "line 2");
  // Mistyped fault payloads name the offending field.
  expect_error("{\"event\":\"edge_agg\",\"t\":0,\"edge\":0,\"faults\":3}\n",
               "'faults' not an object");
  expect_error(
      "{\"event\":\"edge_agg\",\"t\":0,\"edge\":0,"
      "\"faults\":{\"survivors\":\"all\"}}\n",
      "'survivors' not an array");
  expect_error(
      "{\"event\":\"edge_agg\",\"t\":0,\"edge\":0,"
      "\"faults\":{\"lost\":[1,\"x\"]}}\n",
      "'lost' holds a non-numeric id");
  expect_error(
      "{\"event\":\"edge_agg\",\"t\":0,\"edge\":0,"
      "\"faults\":{\"dropped\":\"two\"}}\n",
      "'dropped' not a number");
  expect_error("{\"event\":\"cloud_round\",\"t\":0,\"uploads_lost\":true}\n",
               "'uploads_lost' not an array");
}

TEST(FailureReplay, IrrelevantLinesContributeNothing) {
  // Blank lines, unrelated events and fault-free edge_agg lines are skipped;
  // a cloud_round with an *empty* loss list is kept — it pins the draw
  // history for that round.
  const std::string trace =
      "\n"
      "{\"event\":\"device_update\",\"t\":0,\"device\":3}\n"
      "{\"event\":\"edge_agg\",\"t\":0,\"edge\":0,\"num_sampled\":4}\n"
      "{\"event\":\"cloud_round\",\"t\":0,\"uploads_lost\":[]}\n"
      "{\"event\":\"cloud_round\",\"t\":1,\"uploads_lost\":[1]}\n";
  const fault::FaultReplayLog log = parse(trace);
  EXPECT_TRUE(log.specs.empty());
  EXPECT_TRUE(log.edges.empty());
  ASSERT_EQ(log.clouds.size(), 2u);
  EXPECT_EQ(log.clouds[0].t, 0u);
  EXPECT_TRUE(log.clouds[0].lost_edges.empty());
  EXPECT_EQ(log.clouds[1].lost_edges, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(log.totals().cloud_uploads_lost, 1u);
}

}  // namespace
}  // namespace mach::hfl
