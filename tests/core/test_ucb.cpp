#include "core/ucb.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mach::core {
namespace {

TEST(Ucb, NoDataOptimisticInitIsZeroBeforeAnyRound) {
  UcbEstimator ucb(3);
  // Before any cloud round everything is zero except exploration floor.
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 0.0);
  EXPECT_EQ(ucb.participations(0), 0u);
}

TEST(Ucb, ExploitationIsMaxOfRoundAverages) {
  UcbEstimator ucb(1);
  ucb.record(0, {2.0, 4.0});  // round 1 avg = 3
  ucb.on_cloud_round(5);
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 3.0);
  ucb.record(0, {10.0});  // round 2 avg = 10
  ucb.on_cloud_round(10);
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 10.0);
  ucb.record(0, {1.0});  // round 3 avg = 1 < 10: max retained
  ucb.on_cloud_round(15);
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 10.0);
}

TEST(Ucb, BufferClearedEachCloudRound) {
  UcbEstimator ucb(1);
  ucb.record(0, {4.0});
  ucb.on_cloud_round(5);  // avg 4
  ucb.record(0, {8.0});
  ucb.on_cloud_round(10);  // avg 8 (not (4+8)/2 = 6)
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 8.0);
}

TEST(Ucb, PersistentBufferAblation) {
  UcbOptions options;
  options.clear_buffer_on_cloud_round = false;
  UcbEstimator ucb(1, options);
  ucb.record(0, {4.0});
  ucb.on_cloud_round(5);  // avg 4
  ucb.record(0, {8.0});
  ucb.on_cloud_round(10);  // avg over {4, 8} = 6
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 6.0);
}

TEST(Ucb, ExplorationShrinksWithParticipation) {
  UcbEstimator ucb(2);
  ucb.record(0, {1.0});
  for (int i = 0; i < 9; ++i) ucb.record(0, {1.0});  // 10 participations
  ucb.record(1, {1.0});                              // 1 participation
  ucb.on_cloud_round(20);
  EXPECT_LT(ucb.exploration(0), ucb.exploration(1));
  // Exact Eq. 15 term B: sqrt(log t / count).
  EXPECT_NEAR(ucb.exploration(1), std::sqrt(std::log(20.0) / 1.0), 1e-12);
  EXPECT_NEAR(ucb.exploration(0), std::sqrt(std::log(20.0) / 10.0), 1e-12);
}

TEST(Ucb, ExplorationDisabledAblation) {
  UcbOptions options;
  options.use_exploration = false;
  UcbEstimator ucb(1, options);
  ucb.record(0, {5.0});
  ucb.on_cloud_round(100);
  EXPECT_DOUBLE_EQ(ucb.exploration(0), 0.0);
  EXPECT_DOUBLE_EQ(ucb.estimate(0), 5.0);
}

TEST(Ucb, ExplorationWeightScales) {
  UcbOptions options;
  options.exploration_weight = 2.0;
  UcbEstimator ucb(1, options);
  ucb.record(0, {1.0});
  ucb.on_cloud_round(10);
  EXPECT_NEAR(ucb.exploration(0), 2.0 * std::sqrt(std::log(10.0)), 1e-12);
}

TEST(Ucb, OptimisticInitBorrowsPopulationMax) {
  UcbEstimator ucb(2);
  ucb.record(0, {7.0});
  ucb.on_cloud_round(5);
  // Device 1 never participated: exploitation borrows the population max.
  EXPECT_DOUBLE_EQ(ucb.exploitation(1), 7.0);
  // And its exploration term is maximal (count clamped to 1).
  EXPECT_GE(ucb.estimate(1), ucb.estimate(0));
}

TEST(Ucb, PessimisticInitAblation) {
  UcbOptions options;
  options.optimistic_init = false;
  UcbEstimator ucb(2, options);
  ucb.record(0, {7.0});
  ucb.on_cloud_round(5);
  EXPECT_DOUBLE_EQ(ucb.exploitation(1), 0.0);
}

TEST(Ucb, EstimateIsSumOfTerms) {
  UcbEstimator ucb(1);
  ucb.record(0, {3.0, 5.0});
  ucb.on_cloud_round(8);
  EXPECT_DOUBLE_EQ(ucb.estimate(0), ucb.exploitation(0) + ucb.exploration(0));
}

TEST(Ucb, MultipleRecordsWithinRoundAveragedTogether) {
  UcbEstimator ucb(1);
  ucb.record(0, {2.0, 2.0});
  ucb.record(0, {8.0, 8.0});
  ucb.on_cloud_round(5);
  EXPECT_DOUBLE_EQ(ucb.exploitation(0), 5.0);
  EXPECT_EQ(ucb.participations(0), 2u);
}

TEST(Ucb, OutOfRangeDeviceThrows) {
  UcbEstimator ucb(2);
  EXPECT_THROW(ucb.record(5, {1.0}), std::out_of_range);
  EXPECT_THROW(ucb.estimate(5), std::out_of_range);
}

}  // namespace
}  // namespace mach::core
