#include "core/transfer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mach::core {
namespace {

TransferOptions no_warmup(double alpha, double beta) {
  return {.alpha = alpha, .beta = beta, .warmup_rounds = 0};
}

TEST(Transfer, IdentityAtZero) {
  TransferFunction s(no_warmup(1.0, 3.0));
  EXPECT_DOUBLE_EQ(s(0.0), 1.0);
}

TEST(Transfer, MonotoneIncreasing) {
  TransferFunction s(no_warmup(1.0, 3.0));
  double prev = s(0.0);
  for (double q = 0.1; q <= 3.0; q += 0.1) {
    const double cur = s(q);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Transfer, BoundedByAlphaBand) {
  TransferFunction s(no_warmup(0.8, 5.0));
  // Range is (1 - alpha/2, 1 + alpha/2); for q >= 0 it is [1, 1 + alpha/2).
  for (double q = 0.0; q < 100.0; q += 0.5) {
    EXPECT_GE(s(q), 1.0);
    EXPECT_LT(s(q), 1.0 + 0.8 / 2.0 + 1e-12);
  }
  // Saturation for large q.
  EXPECT_NEAR(s(1000.0), 1.4, 1e-9);
}

TEST(Transfer, AlphaZeroIsConstantOne) {
  TransferFunction s(no_warmup(0.0, 3.0));
  EXPECT_DOUBLE_EQ(s(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s(10.0), 1.0);
}

TEST(Transfer, WarmupRampsCoefficients) {
  TransferFunction s({.alpha = 1.0, .beta = 4.0, .warmup_rounds = 4});
  EXPECT_DOUBLE_EQ(s.effective_alpha(), 0.0);
  EXPECT_DOUBLE_EQ(s(5.0), 1.0);  // no smoothing effect yet
  s.advance_round();
  EXPECT_DOUBLE_EQ(s.effective_alpha(), 0.25);
  EXPECT_DOUBLE_EQ(s.effective_beta(), 1.0);
  s.advance_round();
  s.advance_round();
  s.advance_round();
  EXPECT_DOUBLE_EQ(s.effective_alpha(), 1.0);
  s.advance_round();  // past warmup: stays at configured values
  EXPECT_DOUBLE_EQ(s.effective_alpha(), 1.0);
  EXPECT_DOUBLE_EQ(s.effective_beta(), 4.0);
}

TEST(Transfer, ExactSigmoidValue) {
  TransferFunction s(no_warmup(1.0, 1.0));
  // S(q) = 1 + (1/(1+e^-q) - 0.5); at q = ln(3), sigmoid = 0.75.
  EXPECT_NEAR(s(std::log(3.0)), 1.25, 1e-12);
}

TEST(Transfer, RoundsSeenTracks) {
  TransferFunction s({.alpha = 1, .beta = 1, .warmup_rounds = 2});
  EXPECT_EQ(s.rounds_seen(), 0u);
  s.advance_round();
  s.advance_round();
  EXPECT_EQ(s.rounds_seen(), 2u);
}

}  // namespace
}  // namespace mach::core
