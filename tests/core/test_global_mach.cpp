#include "core/global_mach.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mach::core {
namespace {

hfl::FederationInfo make_info(std::size_t devices, std::size_t edges) {
  hfl::FederationInfo info;
  info.num_devices = devices;
  info.num_edges = edges;
  info.num_classes = 2;
  info.class_histograms.assign(devices, {1, 1});
  return info;
}

TEST(GlobalMach, RequiresBind) {
  GlobalMachSampler sampler;
  const std::vector<std::uint32_t> devices = {0};
  hfl::EdgeSamplingContext ctx;
  ctx.devices = devices;
  ctx.capacity = 1.0;
  EXPECT_THROW(sampler.edge_probabilities(ctx), std::logic_error);
}

TEST(GlobalMach, SlicesGlobalStrategyPerEdge) {
  MachOptions options;
  options.transfer.warmup_rounds = 0;
  GlobalMachSampler sampler(options);
  sampler.bind(make_info(4, 2));

  // Device 3 accumulated much larger gradient norms.
  hfl::TrainingObservation strong;
  strong.device = 3;
  strong.local_grad_sq_norms = {8.0, 8.0};
  sampler.observe_training(strong);
  hfl::TrainingObservation weak;
  weak.device = 0;
  weak.local_grad_sq_norms = {0.2};
  sampler.observe_training(weak);
  sampler.on_cloud_round(5);

  const std::vector<std::uint32_t> edge0 = {0, 1};
  const std::vector<std::uint32_t> edge1 = {2, 3};
  hfl::EdgeSamplingContext ctx0;
  ctx0.t = 6;
  ctx0.edge = 0;
  ctx0.capacity = 1.0;
  ctx0.devices = edge0;
  hfl::EdgeSamplingContext ctx1 = ctx0;
  ctx1.edge = 1;
  ctx1.devices = edge1;

  const auto q0 = sampler.edge_probabilities(ctx0);
  const auto q1 = sampler.edge_probabilities(ctx1);
  ASSERT_EQ(q0.size(), 2u);
  ASSERT_EQ(q1.size(), 2u);
  // Global normalisation: device 3 (largest norm) must top device 0.
  EXPECT_GT(q1[1], q0[0]);
  // The global budget (capacity * num_edges = 2) is split over all devices,
  // so a single edge's slice will generally NOT sum to its own capacity —
  // that is exactly the pathology this ablation exposes.
  const double total =
      q0[0] + q0[1] + q1[0] + q1[1];
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST(GlobalMach, CacheRefreshesPerTimeStep) {
  MachOptions options;
  options.transfer.warmup_rounds = 0;
  GlobalMachSampler sampler(options);
  sampler.bind(make_info(2, 1));
  const std::vector<std::uint32_t> devices = {0, 1};
  hfl::EdgeSamplingContext ctx;
  ctx.t = 0;
  ctx.capacity = 1.0;
  ctx.devices = devices;
  const auto q_before = sampler.edge_probabilities(ctx);
  // New experience lands for both devices (optimistic init would otherwise
  // keep an unexplored device tied with the best explored one).
  hfl::TrainingObservation weak;
  weak.device = 0;
  weak.local_grad_sq_norms = {0.5};
  sampler.observe_training(weak);
  hfl::TrainingObservation strong;
  strong.device = 1;
  strong.local_grad_sq_norms = {50.0};
  sampler.observe_training(strong);
  sampler.on_cloud_round(0);  // folds the buffers, clears cache
  ctx.t = 1;
  const auto q_after = sampler.edge_probabilities(ctx);
  EXPECT_NE(q_before[1], q_after[1]);
  EXPECT_GT(q_after[1], q_after[0]);
}

TEST(GlobalMach, UniformBeforeExperience) {
  GlobalMachSampler sampler;
  sampler.bind(make_info(4, 2));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  hfl::EdgeSamplingContext ctx;
  ctx.capacity = 1.0;
  ctx.devices = devices;
  const auto q = sampler.edge_probabilities(ctx);
  // All-equal estimates -> equal probabilities; budget = 1.0 * 2 edges over
  // 4 devices -> 0.5 each.
  for (double p : q) EXPECT_NEAR(p, 0.5, 1e-9);
}

}  // namespace
}  // namespace mach::core
