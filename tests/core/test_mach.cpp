#include "core/mach.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/registry.h"

namespace mach::core {
namespace {

hfl::FederationInfo small_info(std::size_t devices) {
  hfl::FederationInfo info;
  info.num_devices = devices;
  info.num_edges = 1;
  info.num_classes = 2;
  info.cloud_interval = 5;
  info.class_histograms.assign(devices, {1, 1});
  return info;
}

hfl::EdgeSamplingContext make_ctx(const std::vector<std::uint32_t>& devices,
                                  double capacity) {
  hfl::EdgeSamplingContext ctx;
  ctx.capacity = capacity;
  ctx.devices = devices;
  return ctx;
}

TEST(EdgeSampling, BudgetAndRangeInvariants) {
  TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  const std::vector<double> g2 = {0.5, 4.0, 1.5, 0.0, 9.0};
  const auto q = edge_sampling_probabilities(g2, 2.5, &transfer);
  ASSERT_EQ(q.size(), 5u);
  double total = 0.0;
  for (double p : q) {
    EXPECT_GT(p, 0.0);  // transfer keeps everyone alive
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 2.5, 1e-9);
}

TEST(EdgeSampling, LargerGradientNormLargerProbability) {
  TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  const std::vector<double> g2 = {1.0, 2.0, 8.0};
  const auto q = edge_sampling_probabilities(g2, 1.5, &transfer);
  EXPECT_LT(q[0], q[1]);
  EXPECT_LT(q[1], q[2]);
}

TEST(EdgeSampling, TransferKeepsProbabilitiesNearUniform) {
  // Even with a 100x gradient-norm spread the smoothed probabilities stay
  // within the (1 ± alpha/2) band ratio — that is the point of Eq. 17.
  TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  const std::vector<double> g2 = {0.01, 1.0};
  const auto q = edge_sampling_probabilities(g2, 1.0, &transfer);
  EXPECT_LT(q[1] / q[0], 1.5 / 0.5 + 1e-9);
  EXPECT_GT(q[1], q[0]);
}

TEST(EdgeSampling, NoTransferAblationIsProportional) {
  const std::vector<double> g2 = {1.0, 3.0};
  const auto q = edge_sampling_probabilities(g2, 1.0, nullptr);
  EXPECT_NEAR(q[0], 0.25, 1e-12);
  EXPECT_NEAR(q[1], 0.75, 1e-12);
}

TEST(EdgeSampling, AllZeroNormsUniform) {
  TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  const std::vector<double> g2 = {0.0, 0.0, 0.0};
  const auto q = edge_sampling_probabilities(g2, 1.5, &transfer);
  for (double p : q) EXPECT_NEAR(p, 0.5, 1e-9);
}

TEST(EdgeSampling, EmptyDevices) {
  TransferFunction transfer{TransferOptions{}};
  EXPECT_TRUE(edge_sampling_probabilities({}, 2.0, &transfer).empty());
}

TEST(MachSampler, RequiresBind) {
  MachSampler sampler;
  const std::vector<std::uint32_t> devices = {0};
  EXPECT_THROW(sampler.edge_probabilities(make_ctx(devices, 1.0)), std::logic_error);
}

TEST(MachSampler, UniformBeforeAnyExperience) {
  MachSampler sampler;
  sampler.bind(small_info(4));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 2.0));
  for (double p : q) EXPECT_NEAR(p, 0.5, 1e-9);
}

TEST(MachSampler, ExperienceShiftsProbabilities) {
  MachOptions options;
  options.transfer.warmup_rounds = 0;
  MachSampler sampler(options);
  sampler.bind(small_info(2));
  hfl::TrainingObservation small;
  small.device = 0;
  small.local_grad_sq_norms = {0.1, 0.1};
  hfl::TrainingObservation large;
  large.device = 1;
  large.local_grad_sq_norms = {5.0, 5.0};
  sampler.observe_training(small);
  sampler.observe_training(large);
  sampler.on_cloud_round(5);
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_GT(q[1], q[0]);
  EXPECT_NEAR(q[0] + q[1], 1.0, 1e-9);
}

TEST(MachSampler, MobilityCrossEdgeExperienceIsShared) {
  // A device trains under edge 0, then appears in edge 1: its experience
  // must follow it (the estimator is per-device, not per-edge).
  MachOptions options;
  options.transfer.warmup_rounds = 0;
  MachSampler sampler(options);
  sampler.bind(small_info(2));
  hfl::TrainingObservation weak;
  weak.device = 0;
  weak.edge = 0;
  weak.local_grad_sq_norms = {0.2};
  hfl::TrainingObservation strong;
  strong.device = 1;
  strong.edge = 0;
  strong.local_grad_sq_norms = {9.0};
  sampler.observe_training(weak);
  sampler.observe_training(strong);
  sampler.on_cloud_round(5);
  const std::vector<std::uint32_t> devices = {0, 1};
  hfl::EdgeSamplingContext ctx = make_ctx(devices, 1.0);
  ctx.edge = 1;  // different edge now
  const auto q = sampler.edge_probabilities(ctx);
  EXPECT_GT(q[1], q[0]);
}

TEST(MachSampler, BindResetsState) {
  MachSampler sampler;
  sampler.bind(small_info(2));
  hfl::TrainingObservation obs;
  obs.device = 0;
  obs.local_grad_sq_norms = {9.0};
  sampler.observe_training(obs);
  sampler.on_cloud_round(5);
  EXPECT_EQ(sampler.estimator().participations(0), 1u);
  // Re-binding (fresh run) must reset all experience.
  sampler.bind(small_info(2));
  EXPECT_EQ(sampler.estimator().participations(0), 0u);
  EXPECT_DOUBLE_EQ(sampler.estimator().exploitation(0), 0.0);
}

TEST(MachOracleSampler, UsesOracleNorms) {
  MachOptions options;
  options.transfer.warmup_rounds = 0;
  MachOracleSampler sampler(options);
  EXPECT_TRUE(sampler.needs_oracle());
  const std::vector<std::uint32_t> devices = {0, 1};
  const std::vector<double> oracle = {0.5, 6.0};
  auto ctx = make_ctx(devices, 1.0);
  ctx.oracle_grad_sq_norms = oracle;
  const auto q = sampler.edge_probabilities(ctx);
  EXPECT_GT(q[1], q[0]);
}

TEST(MachOracleSampler, MissingOracleThrows) {
  MachOracleSampler sampler;
  const std::vector<std::uint32_t> devices = {0, 1};
  EXPECT_THROW(sampler.edge_probabilities(make_ctx(devices, 1.0)), std::logic_error);
}

TEST(Registry, CreatesAllKnownSamplers) {
  for (const auto& name :
       {"uniform", "class_balance", "statistical", "mach", "mach_p", "full"}) {
    const auto sampler = make_sampler(name);
    ASSERT_NE(sampler, nullptr);
    EXPECT_EQ(sampler->name(), name);
  }
  EXPECT_THROW(make_sampler("nope"), std::invalid_argument);
}

TEST(Registry, PaperAlgorithmsAndDisplayNames) {
  const auto& algos = paper_algorithms();
  ASSERT_EQ(algos.size(), 5u);
  EXPECT_EQ(display_name("mach"), "MACH");
  EXPECT_EQ(display_name("mach_p"), "MACH-P");
  EXPECT_EQ(display_name("uniform"), "US");
  EXPECT_EQ(display_name("class_balance"), "CS");
  EXPECT_EQ(display_name("statistical"), "SS");
  EXPECT_EQ(display_name("other"), "other");
}

}  // namespace
}  // namespace mach::core
