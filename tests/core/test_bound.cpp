#include "core/bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/mach.h"
#include "sampling/budget.h"

namespace mach::core {
namespace {

TEST(Bound, TermMatchesHandComputation) {
  const std::vector<double> g2 = {4.0, 1.0};
  const std::vector<double> q = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(convergence_bound_term(g2, q), 4.0 / 0.5 + 1.0 / 0.25);
}

TEST(Bound, ZeroNormDevicesIgnoreProbability) {
  const std::vector<double> g2 = {0.0, 1.0};
  const std::vector<double> q = {0.0, 0.5};
  EXPECT_DOUBLE_EQ(convergence_bound_term(g2, q), 2.0);
}

TEST(Bound, ZeroProbabilityWithMassIsInfinite) {
  const std::vector<double> g2 = {1.0};
  const std::vector<double> q = {0.0};
  EXPECT_TRUE(std::isinf(convergence_bound_term(g2, q)));
}

TEST(Bound, SizeMismatchThrows) {
  const std::vector<double> g2 = {1.0, 2.0};
  const std::vector<double> q = {0.5};
  EXPECT_THROW(convergence_bound_term(g2, q), std::invalid_argument);
}

TEST(Bound, Eq13ClosedForm) {
  const std::vector<double> g2 = {1.0, 3.0};
  const auto q = optimal_probabilities_eq13(g2, 2.0);
  EXPECT_DOUBLE_EQ(q[0], 0.5);
  EXPECT_DOUBLE_EQ(q[1], 1.5);  // may exceed 1; Eq. 17 handles that
}

TEST(Bound, Eq13AllZeroFallsBackToUniform)
{
  const std::vector<double> g2 = {0.0, 0.0, 0.0, 0.0};
  const auto q = optimal_probabilities_eq13(g2, 2.0);
  for (double p : q) EXPECT_DOUBLE_EQ(p, 0.5);
}

/// Reproduction finding (see bound.h): Eq. (13)'s q ∝ G^2 equalises the
/// per-device terms, attaining exactly the uniform strategy's bound value.
TEST(Bound, Eq13EqualisesBoundTermWithUniform) {
  common::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng.uniform_index(6);
    std::vector<double> g2(n);
    for (auto& g : g2) g = rng.exponential(1.0) + 0.05;
    const double capacity = 1.0 + rng.uniform() * (static_cast<double>(n) - 1.5);

    const auto eq13 = optimal_probabilities_eq13(g2, capacity);
    const std::vector<double> uniform(n, capacity / static_cast<double>(n));
    EXPECT_NEAR(convergence_bound_term(g2, eq13),
                convergence_bound_term(g2, uniform),
                1e-6 * convergence_bound_term(g2, uniform));
  }
}

/// The true Lagrangian optimum q ∝ G must minimise the bound term against
/// uniform, Eq. (13) and random feasible competitors.
TEST(Bound, SqrtRuleMinimisesBoundTerm) {
  common::Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng.uniform_index(6);
    std::vector<double> g2(n);
    for (auto& g : g2) g = rng.exponential(1.0) + 0.05;
    const double capacity = 1.0 + rng.uniform() * (static_cast<double>(n) - 1.5);

    const auto sqrt_rule = optimal_probabilities_sqrt(g2, capacity);
    bool feasible = true;
    for (double p : sqrt_rule) feasible &= p <= 1.0;
    if (!feasible) continue;  // caps outside the closed form's domain
    const double best = convergence_bound_term(g2, sqrt_rule);

    const std::vector<double> uniform(n, capacity / static_cast<double>(n));
    EXPECT_LE(best, convergence_bound_term(g2, uniform) + 1e-9);
    EXPECT_LE(best,
              convergence_bound_term(g2, optimal_probabilities_eq13(g2, capacity)) +
                  1e-9);

    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.exponential(1.0) + 0.01;
    const auto competitor = sampling::budgeted_probabilities(weights, capacity);
    EXPECT_LE(best, convergence_bound_term(g2, competitor) + 1e-9);
  }
}

TEST(Bound, MachTransferTradesBoundForBoundedWeights) {
  // The smoothed MACH strategy is deliberately sub-optimal in the bound term
  // (it trades it for bounded inverse weights); it must still be no worse
  // than uniform-flipped ordering, i.e. better than anti-proportional.
  TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  const std::vector<double> g2 = {0.5, 1.0, 4.0, 2.0};
  const auto mach = edge_sampling_probabilities(g2, 2.0, &transfer);
  std::vector<double> anti(4);
  const double total = 0.5 + 1.0 + 4.0 + 2.0;
  for (std::size_t i = 0; i < 4; ++i) {
    anti[i] = 2.0 * (total - g2[i]) / (3.0 * total);
  }
  EXPECT_LT(convergence_bound_term(g2, mach), convergence_bound_term(g2, anti));
}

TEST(Bound, Theorem1ShrinksWithHorizon) {
  BoundParams params;
  const double term = 50.0;
  const double at100 = theorem1_bound(params, term, 100);
  const double at1000 = theorem1_bound(params, term, 1000);
  EXPECT_GT(at100, at1000);  // the 1/T optimality term decays
}

TEST(Bound, Theorem1GrowsWithBoundTerm) {
  BoundParams params;
  EXPECT_LT(theorem1_bound(params, 10.0, 100), theorem1_bound(params, 100.0, 100));
}

TEST(Bound, Theorem1ValidatesInputs) {
  BoundParams params;
  EXPECT_THROW(theorem1_bound(params, 1.0, 0), std::invalid_argument);
  params.gamma = 0.0;
  EXPECT_THROW(theorem1_bound(params, 1.0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace mach::core
