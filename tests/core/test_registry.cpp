// Registry tests: the single CLI-name -> factory table (core/registry.h) is
// internally consistent (unique names, canonical name == Sampler::name(),
// non-empty display labels), unknown names fail with the valid list, and —
// exhaustively — every registered sampler constructs and survives one real
// simulated round. A sampler that parses flags but crashes on its first
// edge_probabilities call can't hide behind an unexercised registry entry.
#include "core/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "hfl/experiment.h"

namespace mach::core {
namespace {

TEST(Registry, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  std::set<std::string> displays;
  for (const SamplerInfo& info : sampler_registry()) {
    ASSERT_NE(info.name, nullptr);
    ASSERT_NE(info.display, nullptr);
    ASSERT_NE(info.summary, nullptr);
    EXPECT_FALSE(std::string(info.name).empty());
    EXPECT_FALSE(std::string(info.display).empty());
    EXPECT_FALSE(std::string(info.summary).empty());
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate sampler name " << info.name;
    EXPECT_TRUE(displays.insert(info.display).second)
        << "duplicate display label " << info.display;
  }
  EXPECT_EQ(names.size(), registered_samplers().size());
}

TEST(Registry, FactoryNameMatchesRegistryName) {
  // Checkpoint fingerprints and trace run_begin lines record name(); the
  // registry key must be the same string or resumes cross-wire samplers.
  for (const std::string& name : registered_samplers()) {
    const auto sampler = make_sampler(name);
    ASSERT_NE(sampler, nullptr);
    EXPECT_EQ(sampler->name(), name);
  }
}

TEST(Registry, ZooListExcludesOnlyFullParticipation) {
  const auto& zoo = zoo_algorithms();
  EXPECT_EQ(zoo.size(), registered_samplers().size() - 1);
  for (const std::string& name : zoo) EXPECT_NE(name, "full");
  // The paper's comparison set is a subset of the registry.
  for (const std::string& name : paper_algorithms()) {
    EXPECT_NO_THROW(make_sampler(name)) << name;
  }
}

TEST(Registry, UnknownNameThrowsListingValid) {
  try {
    make_sampler("gradient_descent_into_madness");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("gradient_descent_into_madness"), std::string::npos);
    for (const std::string& name : registered_samplers()) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "error message omits valid name " << name;
    }
  }
}

TEST(Registry, DisplayNamesResolve) {
  EXPECT_EQ(display_name("mach"), "MACH");
  EXPECT_EQ(display_name("uniform"), "US");
  EXPECT_EQ(display_name("emd"), "FedEMD");
  // Unknown names echo back unchanged (benches print what they were given).
  EXPECT_EQ(display_name("mystery"), "mystery");
}

TEST(Registry, FlagHelpListsEveryName) {
  const std::string help = sampler_flag_help();
  for (const std::string& name : registered_samplers()) {
    EXPECT_NE(help.find(name), std::string::npos) << help;
  }
}

TEST(Registry, EveryRegisteredSamplerRunsOneRound) {
  // One tiny end-to-end simulated round per entry: construction, bind,
  // edge_probabilities, observe_training and on_cloud_round all fire.
  hfl::ExperimentConfig config =
      hfl::ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 6;
  config.num_edges = 2;
  config.train_per_device = 8;
  config.test_examples = 20;
  config.mlp_hidden = 6;
  config.hfl.local_epochs = 1;
  config.hfl.cloud_interval = 1;
  config.horizon = 2;
  config.num_stations = 4;
  config.num_hotspots = 2;
  config = config.with_seed(77);

  for (const std::string& name : registered_samplers()) {
    SCOPED_TRACE(name);
    auto sampler = make_sampler(name);
    const hfl::RunResult run = hfl::run_experiment(config, *sampler);
    EXPECT_FALSE(run.metrics.points().empty());
    EXPECT_EQ(run.sampler_name, name);
  }
}

}  // namespace
}  // namespace mach::core
