#include "data/dataset.h"

#include <gtest/gtest.h>

namespace mach::data {
namespace {

Dataset make_small() {
  tensor::Tensor features({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  return Dataset(std::move(features), {0, 1, 2, 1}, 3);
}

TEST(Dataset, ConstructionValidatesLabels) {
  tensor::Tensor ok({2, 2}, {0, 0, 0, 0});
  EXPECT_NO_THROW(Dataset(tensor::Tensor(ok.shape()), {0, 1}, 2));
  EXPECT_THROW(Dataset(tensor::Tensor({2, 2}), {0, 2}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(tensor::Tensor({2, 2}), {0, -1}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(tensor::Tensor({3, 2}), {0, 1}, 2), std::invalid_argument);
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = make_small();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_classes(), 3u);
  EXPECT_EQ(d.example_numel(), 2u);
  EXPECT_EQ(d.example_shape(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(d.label(2), 2);
}

TEST(Dataset, GatherStacksExamples) {
  const Dataset d = make_small();
  const std::vector<std::size_t> idx = {3, 0};
  const Batch batch = d.gather(idx);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.features.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_FLOAT_EQ(batch.features[0], 6.0f);
  EXPECT_FLOAT_EQ(batch.features[1], 7.0f);
  EXPECT_FLOAT_EQ(batch.features[2], 0.0f);
  EXPECT_EQ(batch.labels, (std::vector<int>{1, 0}));
}

TEST(Dataset, GatherOutOfRangeThrows) {
  const Dataset d = make_small();
  const std::vector<std::size_t> idx = {4};
  EXPECT_THROW(d.gather(idx), std::out_of_range);
}

TEST(Dataset, SampleBatchDrawsFromGivenIndices) {
  const Dataset d = make_small();
  common::Rng rng(1);
  const std::vector<std::size_t> shard = {1, 3};  // labels 1 and 1
  for (int trial = 0; trial < 20; ++trial) {
    const Batch batch = d.sample_batch(shard, 5, rng);
    EXPECT_EQ(batch.size(), 5u);
    for (int label : batch.labels) EXPECT_EQ(label, 1);
  }
}

TEST(Dataset, SampleBatchEmptyShardThrows) {
  const Dataset d = make_small();
  common::Rng rng(2);
  const std::vector<std::size_t> empty;
  EXPECT_THROW(d.sample_batch(empty, 3, rng), std::invalid_argument);
}

TEST(Dataset, ClassHistogram) {
  const Dataset d = make_small();
  const std::vector<std::size_t> all = {0, 1, 2, 3};
  EXPECT_EQ(d.class_histogram(all), (std::vector<std::size_t>{1, 2, 1}));
  const std::vector<std::size_t> subset = {1, 3};
  EXPECT_EQ(d.class_histogram(subset), (std::vector<std::size_t>{0, 2, 0}));
}

}  // namespace
}  // namespace mach::data
