#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mach::data {
namespace {

TEST(SyntheticSpec, PresetsMatchPaperTiers) {
  const auto mnist = SyntheticSpec::mnist_like();
  const auto fmnist = SyntheticSpec::fmnist_like();
  const auto cifar = SyntheticSpec::cifar_like();
  EXPECT_EQ(mnist.channels, 1u);
  EXPECT_EQ(cifar.channels, 3u);
  // Difficulty ordering is encoded in noise and distractor mix.
  EXPECT_LT(mnist.noise_stddev, fmnist.noise_stddev);
  EXPECT_LT(fmnist.noise_stddev, cifar.noise_stddev);
  EXPECT_LT(mnist.distractor_mix, fmnist.distractor_mix);
  EXPECT_LT(fmnist.distractor_mix, cifar.distractor_mix);
}

TEST(SyntheticSpec, TaskNames) {
  EXPECT_EQ(task_name(TaskKind::MnistLike), "mnist");
  EXPECT_EQ(task_name(TaskKind::FmnistLike), "fmnist");
  EXPECT_EQ(task_name(TaskKind::CifarLike), "cifar10");
}

TEST(SyntheticGenerator, GeneratesRequestedShape) {
  SyntheticGenerator gen(SyntheticSpec::mnist_like(), 1);
  common::Rng rng(2);
  const Dataset d = gen.generate_uniform(50, rng);
  EXPECT_EQ(d.size(), 50u);
  EXPECT_EQ(d.num_classes(), 10u);
  EXPECT_EQ(d.example_shape(), (std::vector<std::size_t>{1, 12, 12}));
}

TEST(SyntheticGenerator, LabelsFollowWeights) {
  SyntheticGenerator gen(SyntheticSpec::mnist_like(), 1);
  common::Rng rng(3);
  std::vector<double> weights(10, 0.0);
  weights[4] = 1.0;
  const Dataset d = gen.generate(100, weights, rng);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(d.label(i), 4);
}

TEST(SyntheticGenerator, WeightSizeValidated) {
  SyntheticGenerator gen(SyntheticSpec::mnist_like(), 1);
  common::Rng rng(4);
  const std::vector<double> bad(7, 1.0);
  EXPECT_THROW(gen.generate(10, bad, rng), std::invalid_argument);
}

TEST(SyntheticGenerator, DeterministicGivenSeeds) {
  SyntheticGenerator gen_a(SyntheticSpec::fmnist_like(), 5);
  SyntheticGenerator gen_b(SyntheticSpec::fmnist_like(), 5);
  common::Rng rng_a(6), rng_b(6);
  const Dataset a = gen_a.generate_uniform(20, rng_a);
  const Dataset b = gen_b.generate_uniform(20, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.features().numel(); ++i) {
    ASSERT_EQ(a.features()[i], b.features()[i]);
  }
}

TEST(SyntheticGenerator, DifferentSeedsDifferentConcepts) {
  SyntheticGenerator gen_a(SyntheticSpec::mnist_like(), 1);
  SyntheticGenerator gen_b(SyntheticSpec::mnist_like(), 2);
  common::Rng rng_a(7), rng_b(7);
  const Dataset a = gen_a.generate_uniform(5, rng_a);
  const Dataset b = gen_b.generate_uniform(5, rng_b);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.features().numel(); ++i) {
    diff += std::abs(a.features()[i] - b.features()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticGenerator, RenderValidatesLabel) {
  SyntheticGenerator gen(SyntheticSpec::mnist_like(), 1);
  common::Rng rng(8);
  EXPECT_THROW(gen.render_example(-1, rng), std::out_of_range);
  EXPECT_THROW(gen.render_example(10, rng), std::out_of_range);
  EXPECT_NO_THROW(gen.render_example(9, rng));
}

/// Nearest-class-centroid accuracy: classes must be separable well above
/// chance on the easy tier, and the tiers must be ordered by difficulty.
double centroid_accuracy(const SyntheticSpec& spec, std::uint64_t seed) {
  SyntheticGenerator gen(spec, seed);
  common::Rng rng(seed + 1);
  const Dataset train = gen.generate_uniform(600, rng);
  const Dataset test = gen.generate_uniform(300, rng);
  const std::size_t dim = train.example_numel();
  std::vector<std::vector<double>> centroids(spec.classes,
                                             std::vector<double>(dim, 0.0));
  std::vector<std::size_t> counts(spec.classes, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto label = static_cast<std::size_t>(train.label(i));
    ++counts[label];
    for (std::size_t j = 0; j < dim; ++j) {
      centroids[label][j] += train.features()[i * dim + j];
    }
  }
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (auto& v : centroids[c]) v /= std::max<double>(1.0, counts[c]);
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    double best = 1e300;
    std::size_t best_class = 0;
    for (std::size_t c = 0; c < spec.classes; ++c) {
      double d2 = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double delta = test.features()[i * dim + j] - centroids[c][j];
        d2 += delta * delta;
      }
      if (d2 < best) {
        best = d2;
        best_class = c;
      }
    }
    if (static_cast<int>(best_class) == test.label(i)) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

TEST(SyntheticGenerator, ClassesSeparableAboveChance) {
  EXPECT_GT(centroid_accuracy(SyntheticSpec::mnist_like(), 42), 0.6);
}

TEST(SyntheticGenerator, DifficultyOrderingHolds) {
  const double mnist = centroid_accuracy(SyntheticSpec::mnist_like(), 42);
  const double fmnist = centroid_accuracy(SyntheticSpec::fmnist_like(), 42);
  const double cifar = centroid_accuracy(SyntheticSpec::cifar_like(), 42);
  EXPECT_GT(mnist, fmnist);
  EXPECT_GT(fmnist, cifar);
  EXPECT_GT(cifar, 0.15);  // still above 10% chance
}

}  // namespace
}  // namespace mach::data
