#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.h"

namespace mach::data {
namespace {

Dataset sample_dataset() {
  SyntheticGenerator gen(SyntheticSpec::mnist_like(), 3);
  common::Rng rng(4);
  return gen.generate_uniform(25, rng);
}

TEST(DatasetIo, RoundTrip) {
  const Dataset original = sample_dataset();
  const std::string path = testing::TempDir() + "dataset.bin";
  ASSERT_TRUE(save_dataset(original, path));
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_classes(), original.num_classes());
  EXPECT_EQ(loaded.example_shape(), original.example_shape());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
  }
  for (std::size_t i = 0; i < original.features().numel(); ++i) {
    ASSERT_EQ(loaded.features()[i], original.features()[i]);
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, SaveFailsOnBadPath) {
  EXPECT_FALSE(save_dataset(sample_dataset(), "/no/such/dir/d.bin"));
}

TEST(DatasetIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_dataset("/no/such/file.bin"), std::runtime_error);
}

TEST(DatasetIo, LoadCorruptMagicThrows) {
  const std::string path = testing::TempDir() + "corrupt_dataset.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage garbage garbage garbage";
  }
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DatasetIo, LoadTruncatedThrows) {
  const Dataset original = sample_dataset();
  const std::string full_path = testing::TempDir() + "full_dataset.bin";
  ASSERT_TRUE(save_dataset(original, full_path));
  // Truncate to half.
  std::ifstream in(full_path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::string cut_path = testing::TempDir() + "cut_dataset.bin";
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(load_dataset(cut_path), std::runtime_error);
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(DatasetIo, ExportLabelsCsv) {
  const Dataset dataset = sample_dataset();
  const std::string path = testing::TempDir() + "labels.csv";
  ASSERT_TRUE(export_labels_csv(dataset, path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "index,label");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, dataset.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mach::data
