#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.h"

namespace mach::data {
namespace {

Dataset uniform_dataset(std::size_t n, std::uint64_t seed) {
  SyntheticGenerator gen(SyntheticSpec::mnist_like(), seed);
  common::Rng rng(seed + 100);
  return gen.generate_uniform(n, rng);
}

TEST(LongTailedWeights, GeometricShape) {
  const auto w = long_tailed_weights(4, 0.5);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[2], 0.25);
  EXPECT_DOUBLE_EQ(w[3], 0.125);
}

TEST(LongTailedWeights, RatioOneIsUniform) {
  const auto w = long_tailed_weights(5, 1.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(LongTailedWeights, InvalidRatioThrows) {
  EXPECT_THROW(long_tailed_weights(3, 0.0), std::invalid_argument);
  EXPECT_THROW(long_tailed_weights(3, 1.5), std::invalid_argument);
  EXPECT_THROW(long_tailed_weights(3, -0.2), std::invalid_argument);
}

struct PartitionCase {
  std::string name;
  std::function<Partition(const Dataset&, std::size_t, common::Rng&)> run;
};

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<PartitionCase, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(PartitionProperty, ExactCoverAndNonEmpty) {
  const auto& [pcase, devices, seed] = GetParam();
  const Dataset d = uniform_dataset(403, seed);
  common::Rng rng(seed);
  const Partition p = pcase.run(d, devices, rng);
  ASSERT_EQ(p.size(), devices);
  EXPECT_TRUE(is_exact_partition(p, d.size()))
      << pcase.name << " devices=" << devices << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionProperty,
    ::testing::Combine(
        ::testing::Values(
            PartitionCase{"long_tailed",
                          [](const Dataset& d, std::size_t m, common::Rng& rng) {
                            return partition_long_tailed(d, m, 0.6, rng);
                          }},
            PartitionCase{"dirichlet",
                          [](const Dataset& d, std::size_t m, common::Rng& rng) {
                            return partition_dirichlet(d, m, 0.3, rng);
                          }},
            PartitionCase{"iid",
                          [](const Dataset& d, std::size_t m, common::Rng& rng) {
                            return partition_iid(d, m, rng);
                          }},
            PartitionCase{"shards",
                          [](const Dataset& d, std::size_t m, common::Rng& rng) {
                            return partition_shards(d, m, 2, rng);
                          }}),
        ::testing::Values(std::size_t{1}, std::size_t{7}, std::size_t{20}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{99})),
    [](const auto& info) {
      return std::get<0>(info.param).name + "_m" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(PartitionLongTailed, DevicesAreSkewed) {
  const Dataset d = uniform_dataset(1000, 3);
  common::Rng rng(3);
  const Partition p = partition_long_tailed(d, 10, 0.5, rng);
  // On average a device's dominant class should hold well over the uniform
  // share (10%) of its examples.
  double dominant_share = 0.0;
  for (const auto& part : p) {
    const auto histogram = d.class_histogram(part);
    const std::size_t max_count = *std::max_element(histogram.begin(), histogram.end());
    dominant_share += static_cast<double>(max_count) / part.size();
  }
  dominant_share /= static_cast<double>(p.size());
  EXPECT_GT(dominant_share, 0.25);
}

TEST(PartitionLongTailed, NearEqualShardSizes) {
  const Dataset d = uniform_dataset(205, 4);
  common::Rng rng(4);
  const Partition p = partition_long_tailed(d, 10, 0.6, rng);
  for (const auto& part : p) {
    EXPECT_GE(part.size(), 20u);
    EXPECT_LE(part.size(), 21u);
  }
}

TEST(PartitionDirichlet, SmallAlphaMoreSkewedThanLarge) {
  const Dataset d = uniform_dataset(2000, 5);
  auto dominant_share = [&](double alpha, std::uint64_t seed) {
    common::Rng rng(seed);
    const Partition p = partition_dirichlet(d, 10, alpha, rng);
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& part : p) {
      if (part.empty()) continue;
      const auto histogram = d.class_histogram(part);
      total += static_cast<double>(
                   *std::max_element(histogram.begin(), histogram.end())) /
               part.size();
      ++counted;
    }
    return total / counted;
  };
  EXPECT_GT(dominant_share(0.05, 6), dominant_share(100.0, 6) + 0.1);
}

TEST(PartitionIid, BalancedClassMix) {
  const Dataset d = uniform_dataset(2000, 7);
  common::Rng rng(7);
  const Partition p = partition_iid(d, 4, rng);
  for (const auto& part : p) {
    const auto histogram = d.class_histogram(part);
    for (std::size_t count : histogram) {
      // Each class ~10% of a 500-example shard.
      EXPECT_NEAR(static_cast<double>(count), 50.0, 25.0);
    }
  }
}

TEST(PartitionShards, AtMostShardsPerDeviceClasses) {
  const Dataset d = uniform_dataset(1000, 8);
  common::Rng rng(8);
  const Partition p = partition_shards(d, 10, 2, rng);
  for (const auto& part : p) {
    const auto histogram = d.class_histogram(part);
    // Two shards from a label-sorted order touch at most 4 classes (each
    // shard can straddle one class boundary).
    std::size_t classes_present = 0;
    for (std::size_t count : histogram) classes_present += count > 0 ? 1 : 0;
    EXPECT_LE(classes_present, 4u);
  }
}

TEST(Partition, ZeroDevicesThrows) {
  const Dataset d = uniform_dataset(50, 9);
  common::Rng rng(9);
  EXPECT_THROW(partition_long_tailed(d, 0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(partition_iid(d, 0, rng), std::invalid_argument);
  EXPECT_THROW(partition_dirichlet(d, 0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(partition_shards(d, 0, 2, rng), std::invalid_argument);
}

TEST(Partition, MoreDevicesThanExamplesThrows) {
  const Dataset d = uniform_dataset(5, 10);
  common::Rng rng(10);
  EXPECT_THROW(partition_long_tailed(d, 10, 0.5, rng), std::invalid_argument);
}

TEST(IsExactPartition, DetectsViolations) {
  EXPECT_TRUE(is_exact_partition({{0, 1}, {2}}, 3));
  EXPECT_FALSE(is_exact_partition({{0, 1}, {1}}, 3));   // duplicate
  EXPECT_FALSE(is_exact_partition({{0, 1}}, 3));        // missing
  EXPECT_FALSE(is_exact_partition({{0, 3}, {1, 2}}, 3));  // out of range
  EXPECT_FALSE(is_exact_partition({{0, 1, 2}, {}}, 3)); // empty part
}

}  // namespace
}  // namespace mach::data
