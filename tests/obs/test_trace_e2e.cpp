// End-to-end telemetry smoke tests: a small 2-edge/8-device simulator run
// with a JsonlTraceWriter attached must stream a parseable trace whose
// bookkeeping is internally consistent (per-step events, expected-budget
// feasibility sum(q) <= K_n per edge, device lines matching edge counts),
// and attaching an observer must not perturb the run at all.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "hfl/experiment.h"
#include "hfl/simulator.h"
#include "obs/json.h"
#include "obs/jsonl_writer.h"
#include "sampling/baselines.h"

namespace mach::hfl {
namespace {

constexpr std::size_t kSteps = 20;

ExperimentConfig tiny_config(std::uint64_t seed = 11) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 20;
  config.test_examples = 120;
  config.mlp_hidden = 12;
  config.hfl.local_epochs = 2;
  config.hfl.cloud_interval = 5;
  config.horizon = kSteps;
  config.num_stations = 8;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

HflSimulator make_simulator(const ExperimentConfig& config,
                            const ExperimentArtifacts& artifacts) {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  return HflSimulator(artifacts.train, artifacts.test, artifacts.partition,
                      artifacts.schedule, make_model_factory(config), options);
}

std::vector<obs::JsonValue> parse_trace(const std::string& text) {
  std::vector<obs::JsonValue> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    auto value = obs::parse_json(line, &error);
    EXPECT_TRUE(value.has_value()) << error << " in line: " << line;
    if (value) events.push_back(std::move(*value));
  }
  return events;
}

std::size_t count_events(const std::vector<obs::JsonValue>& events,
                         std::string_view kind) {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.string_or("event", "") == kind) ++n;
  }
  return n;
}

TEST(TraceE2E, MachRunProducesConsistentTrace) {
  const auto config = tiny_config(11);
  auto artifacts = build_experiment(config);
  auto simulator = make_simulator(config, artifacts);
  auto sampler = core::make_sampler("mach");

  std::ostringstream out;
  obs::JsonlTraceWriter trace(out);
  simulator.set_observer(&trace);
  simulator.run(*sampler, kSteps);
  simulator.set_observer(nullptr);

  const auto events = parse_trace(out.str());
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.size(), trace.lines_written());

  // Delimiters and the per-step skeleton.
  EXPECT_EQ(count_events(events, "run_begin"), 1u);
  EXPECT_EQ(count_events(events, "run_end"), 1u);
  EXPECT_EQ(count_events(events, "step"), kSteps);
  EXPECT_GE(count_events(events, "eval"), 1u);
  EXPECT_GT(count_events(events, "edge_agg"), 0u);

  const obs::JsonValue& begin = events.front();
  EXPECT_EQ(begin.string_or("event", ""), "run_begin");
  EXPECT_EQ(begin.string_or("sampler", ""), "mach");
  EXPECT_DOUBLE_EQ(begin["num_devices"].as_number(), 8.0);
  EXPECT_DOUBLE_EQ(begin["num_edges"].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(begin["steps"].as_number(), static_cast<double>(kSteps));

  const obs::JsonValue& end = events.back();
  EXPECT_EQ(end.string_or("event", ""), "run_end");
  EXPECT_DOUBLE_EQ(end["steps"].as_number(), static_cast<double>(kSteps));
  EXPECT_EQ(static_cast<std::size_t>(end["cloud_rounds"].as_number()),
            count_events(events, "cloud_round"));
  // The registry and phase breakdown ride along on run_end.
  EXPECT_GT(end["metrics"]["counters"]["devices_trained"].as_number(), 0.0);
  EXPECT_GT(end["phases"]["device_training"]["count"].as_number(), 0.0);
  EXPECT_GT(end["phases"]["evaluation"]["total_s"].as_number(), 0.0);

  // Per-edge bookkeeping: expected participants never exceed the channel
  // budget K_n (floor clamping may push the sum marginally above the
  // renormalised budget, by at most floor per present device).
  const double floor = config.hfl.min_probability;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> sampled_by_step_edge;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> device_lines;
  for (const auto& e : events) {
    const std::string kind = e.string_or("event", "");
    if (kind == "edge_agg") {
      const auto t = static_cast<std::size_t>(e["t"].as_number());
      const auto edge = static_cast<std::size_t>(e["edge"].as_number());
      const double capacity = e["capacity"].as_number();
      const auto num_devices = static_cast<std::size_t>(e["num_devices"].as_number());
      const auto num_sampled = static_cast<std::size_t>(e["num_sampled"].as_number());
      EXPECT_GT(capacity, 0.0);
      EXPECT_LE(num_sampled, num_devices);
      const obs::JsonValue& q = e["q"];
      EXPECT_EQ(static_cast<std::size_t>(q["count"].as_number()), num_devices);
      if (num_devices > 0) {
        EXPECT_GE(q["min"].as_number(), floor);
        EXPECT_LE(q["max"].as_number(), 1.0);
        EXPECT_LE(q["sum"].as_number(),
                  capacity + floor * static_cast<double>(num_devices) + 1e-9);
      }
      if (num_sampled > 0) {
        // HT weights sum to 1 in expectation; any realisation is finite and
        // positive, and its variance is a number (the §III-B.2 diagnostic).
        EXPECT_GT(e["ht_weight_sum"].as_number(), 0.0);
        EXPECT_GE(e["ht_weight_variance"].as_number(), 0.0);
      }
      sampled_by_step_edge[{t, edge}] = num_sampled;
    } else if (kind == "device") {
      const auto t = static_cast<std::size_t>(e["t"].as_number());
      const auto edge = static_cast<std::size_t>(e["edge"].as_number());
      EXPECT_LT(edge, 2u);
      EXPECT_GE(e["q"].as_number(), floor);
      EXPECT_LE(e["q"].as_number(), 1.0);
      EXPECT_GE(e["seconds"].as_number(), 0.0);
      ++device_lines[{t, edge}];
    } else if (kind == "eval") {
      EXPECT_GE(e["test_accuracy"].as_number(), 0.0);
      EXPECT_LE(e["test_accuracy"].as_number(), 1.0);
    }
  }
  // Every device line belongs to an edge aggregation that counted it.
  for (const auto& [key, lines] : device_lines) {
    ASSERT_TRUE(sampled_by_step_edge.count(key))
        << "device line without edge_agg at t=" << key.first;
    EXPECT_EQ(lines, sampled_by_step_edge[key]);
  }
  // And the realised draws match: sum over edges of num_sampled == devices.
  std::size_t total_sampled = 0;
  for (const auto& [key, n] : sampled_by_step_edge) total_sampled += n;
  std::size_t total_device_lines = 0;
  for (const auto& [key, n] : device_lines) total_device_lines += n;
  EXPECT_EQ(total_sampled, total_device_lines);

  // MACH supports introspection: cloud rounds after the first carry the
  // refreshed UCB experience for all 8 devices.
  bool saw_introspection = false;
  for (const auto& e : events) {
    if (e.string_or("event", "") != "cloud_round") continue;
    if (e["g_squared"].is_array()) {
      saw_introspection = true;
      EXPECT_EQ(e["g_squared"].as_array().size(), 8u);
      EXPECT_EQ(e["participations"].as_array().size(), 8u);
      EXPECT_EQ(static_cast<std::size_t>(e["g_squared_summary"]["count"].as_number()),
                8u);
    }
  }
  EXPECT_TRUE(saw_introspection);
}

TEST(TraceE2E, OptionsSuppressChattyEventClasses) {
  const auto config = tiny_config(12);
  auto artifacts = build_experiment(config);
  auto simulator = make_simulator(config, artifacts);
  sampling::UniformSampler sampler;

  std::ostringstream out;
  obs::JsonlTraceOptions options;
  options.device_events = false;
  options.step_events = false;
  obs::JsonlTraceWriter trace(out, options);
  simulator.set_observer(&trace);
  simulator.run(sampler, kSteps);

  const auto events = parse_trace(out.str());
  EXPECT_EQ(count_events(events, "device"), 0u);
  EXPECT_EQ(count_events(events, "step"), 0u);
  EXPECT_EQ(count_events(events, "run_begin"), 1u);
  EXPECT_GT(count_events(events, "edge_agg"), 0u);
  EXPECT_EQ(count_events(events, "run_end"), 1u);
  // Uniform sampling has no UCB state to introspect.
  for (const auto& e : events) {
    if (e.string_or("event", "") == "cloud_round") {
      EXPECT_TRUE(e["g_squared"].is_null());
      EXPECT_TRUE(e["g_squared_summary"].is_null());
    }
  }
}

TEST(TraceE2E, ObserverAttachmentDoesNotPerturbTheRun) {
  const auto config = tiny_config(13);
  auto artifacts = build_experiment(config);

  auto plain_sim = make_simulator(config, artifacts);
  auto plain_sampler = core::make_sampler("mach");
  const MetricsRecorder plain = plain_sim.run(*plain_sampler, kSteps);

  auto traced_sim = make_simulator(config, artifacts);
  auto traced_sampler = core::make_sampler("mach");
  std::ostringstream out;
  obs::JsonlTraceWriter trace(out);
  traced_sim.set_observer(&trace);
  const MetricsRecorder traced = traced_sim.run(*traced_sampler, kSteps);

  // Bit-identical trajectories: telemetry must not touch the RNG stream or
  // any aggregation arithmetic.
  ASSERT_EQ(plain.points().size(), traced.points().size());
  for (std::size_t i = 0; i < plain.points().size(); ++i) {
    EXPECT_EQ(plain.points()[i].t, traced.points()[i].t);
    EXPECT_EQ(plain.points()[i].test_accuracy, traced.points()[i].test_accuracy);
    EXPECT_EQ(plain.points()[i].test_loss, traced.points()[i].test_loss);
    EXPECT_EQ(plain.points()[i].train_loss, traced.points()[i].train_loss);
    EXPECT_EQ(plain.points()[i].participants, traced.points()[i].participants);
  }
  EXPECT_EQ(plain_sim.last_run_cost().device_uploads,
            traced_sim.last_run_cost().device_uploads);
  EXPECT_EQ(plain_sim.last_run_cost().total_model_messages(),
            traced_sim.last_run_cost().total_model_messages());
  // The traced run really did trace.
  EXPECT_GT(trace.lines_written(), 0u);
}

TEST(TraceE2E, PhaseTimersAndRegistryRecordedWithoutObserver) {
  const auto config = tiny_config(14);
  auto artifacts = build_experiment(config);
  auto simulator = make_simulator(config, artifacts);
  sampling::UniformSampler sampler;
  simulator.run(sampler, kSteps);

  // Telemetry accumulates even with no observer attached: the phase timers
  // and counters back the --phase_times output of experiment_runner.
  const obs::PhaseTimerSet& timers = simulator.phase_timers();
  EXPECT_GT(timers[obs::Phase::DeviceTraining].count, 0u);
  EXPECT_GT(timers[obs::Phase::Evaluation].count, 0u);
  EXPECT_GT(timers.total_seconds(), 0.0);

  const obs::MetricsSnapshot snap = simulator.metrics_registry().snapshot();
  bool saw_trained = false;
  for (const auto& entry : snap.counters) {
    if (entry.name == "devices_trained") {
      saw_trained = true;
      EXPECT_GT(entry.value, 0u);
    }
  }
  EXPECT_TRUE(saw_trained);
}

}  // namespace
}  // namespace mach::hfl
