// SpanProfiler unit suite: ring-buffer overflow semantics, thread-binding
// scopes, deterministic merge order, and the Chrome trace-event export
// round-tripped through the in-tree JSON parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/resource.h"
#include "obs/span_profiler.h"

namespace mach::obs {
namespace {

void record_span(const char* name, std::int64_t t = -1, std::int64_t id = -1) {
  SpanGuard guard(name, t, id);
}

TEST(SpanProfiler, UnboundThreadRecordsNothing) {
  SpanProfiler profiler(1, 16);
  // No ThreadScope: the guard must be a complete no-op.
  record_span("orphan", 3, 7);
  EXPECT_TRUE(profiler.drain().empty());
  EXPECT_EQ(profiler.spans_dropped(), 0u);
}

TEST(SpanProfiler, RecordsNameStepAndIdThroughTheBinding) {
  SpanProfiler profiler(1, 16);
  {
    SpanProfiler::ThreadScope scope(&profiler, 0);
    record_span("waterfill", 5, 2);
  }
  const std::vector<Span> spans = profiler.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "waterfill");
  EXPECT_EQ(spans[0].t, 5);
  EXPECT_EQ(spans[0].id, 2);
  EXPECT_EQ(spans[0].track, 0u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(SpanProfiler, NestedGuardsTrackDepth) {
  SpanProfiler profiler(1, 16);
  {
    SpanProfiler::ThreadScope scope(&profiler, 0);
    SpanGuard outer("round", 0);
    {
      SpanGuard middle("edge_round", 0, 1);
      record_span("device_train", 0, 4);
    }
  }
  const std::vector<Span> spans = profiler.drain();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start_ns: outer opened first, innermost completes first but
  // starts last.
  EXPECT_STREQ(spans[0].name, "round");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_STREQ(spans[1].name, "edge_round");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "device_train");
  EXPECT_EQ(spans[2].depth, 2u);
}

TEST(SpanProfiler, ThreadScopeRestoresThePreviousBinding) {
  SpanProfiler outer_profiler(1, 16);
  SpanProfiler inner_profiler(1, 16);
  {
    SpanProfiler::ThreadScope outer(&outer_profiler, 0);
    {
      SpanProfiler::ThreadScope inner(&inner_profiler, 0);
      record_span("inner");
    }
    record_span("outer");
  }
  record_span("unbound");

  const auto inner_spans = inner_profiler.drain();
  ASSERT_EQ(inner_spans.size(), 1u);
  EXPECT_STREQ(inner_spans[0].name, "inner");
  const auto outer_spans = outer_profiler.drain();
  ASSERT_EQ(outer_spans.size(), 1u);
  EXPECT_STREQ(outer_spans[0].name, "outer");
}

TEST(SpanProfiler, RingOverflowDropsOldestAndCountsIt) {
  SpanProfiler profiler(1, 4);
  {
    SpanProfiler::ThreadScope scope(&profiler, 0);
    for (std::int64_t i = 0; i < 7; ++i) record_span("span", i);
  }
  EXPECT_EQ(profiler.spans_dropped(), 3u);
  const std::vector<Span> spans = profiler.drain();
  ASSERT_EQ(spans.size(), 4u);
  // Drop-oldest: the survivors are the newest four, in completion order.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].t, static_cast<std::int64_t>(i + 3));
  }
  // The dropped counter survives the drain (it feeds otherData later).
  EXPECT_EQ(profiler.spans_dropped(), 3u);
}

TEST(SpanProfiler, DrainedSpansComeBackSortedAcrossTracks) {
  SpanProfiler profiler(3, 16);
  // One thread plays every track in sequence; interleave completion so the
  // per-track rings are each locally ordered but globally shuffled.
  for (std::int64_t round = 0; round < 3; ++round) {
    for (std::uint32_t track = 0; track < 3; ++track) {
      SpanProfiler::ThreadScope scope(&profiler, track);
      record_span("work", round, track);
    }
  }
  profiler.merge_thread_rings();
  const std::vector<Span> spans = profiler.drain();
  ASSERT_EQ(spans.size(), 9u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
  EXPECT_EQ(profiler.spans_dropped(), 0u);
  // A second drain yields nothing: the master list was moved out.
  EXPECT_TRUE(profiler.drain().empty());
}

TEST(SpanProfiler, WorkerThreadsRecordIntoTheirOwnTracks) {
  SpanProfiler profiler(3, 16);
  std::vector<std::thread> workers;
  for (std::uint32_t slot = 0; slot < 2; ++slot) {
    workers.emplace_back([&profiler, slot] {
      SpanProfiler::ThreadScope scope(&profiler, slot + 1);
      record_span("device_train", 0, static_cast<std::int64_t>(slot));
    });
  }
  for (auto& worker : workers) worker.join();
  // Joined workers == barrier: merging here mirrors the simulator.
  profiler.merge_thread_rings();
  const std::vector<Span> spans = profiler.drain();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::uint32_t, std::int64_t> by_track;
  for (const Span& span : spans) by_track[span.track] = span.id;
  EXPECT_EQ(by_track.size(), 2u);
  EXPECT_EQ(by_track[1], 0);
  EXPECT_EQ(by_track[2], 1);
}

TEST(SpanProfiler, ChromeTraceRoundTripsThroughTheJsonParser) {
  SpanProfiler profiler(2, 4);
  {
    SpanProfiler::ThreadScope scope(&profiler, 0);
    record_span("round", 0);
    record_span("edge_round", 0, 1);
  }
  {
    SpanProfiler::ThreadScope scope(&profiler, 1);
    for (std::int64_t i = 0; i < 6; ++i) record_span("device_train", 0, i);
  }
  ResourceSampler resources(/*interval_seconds=*/0.0);
  resources.force_sample();

  const std::string path = ::testing::TempDir() + "span_profile_roundtrip.json";
  ASSERT_TRUE(profiler.write_chrome_trace(path, &resources));

  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  std::string error;
  const auto parsed = parse_json(body, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue& doc = *parsed;

  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ms");
  EXPECT_EQ(doc["otherData"].number_or("spans_dropped", -1), 2.0);
  EXPECT_EQ(doc["otherData"].number_or("tracks", 0), 2.0);
  EXPECT_EQ(doc["otherData"].number_or("ring_capacity", 0), 4.0);

  ASSERT_TRUE(doc["traceEvents"].is_array());
  std::map<std::string, std::size_t> phases;
  std::vector<std::string> thread_names;
  std::size_t counters = 0;
  for (const JsonValue& event : doc["traceEvents"].as_array()) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "M") {
      thread_names.push_back(event["args"].string_or("name", "?"));
    } else if (ph == "X") {
      ++phases[event.string_or("name", "?")];
      EXPECT_GE(event.number_or("dur", -1), 0.0);
    } else if (ph == "C") {
      ++counters;
      EXPECT_GT(event["args"].number_or("value", 0), 0.0);
    }
  }
  EXPECT_EQ(thread_names,
            (std::vector<std::string>{"coordinator", "worker_slot_0"}));
  EXPECT_EQ(phases["round"], 1u);
  EXPECT_EQ(phases["edge_round"], 1u);
  EXPECT_EQ(phases["device_train"], 4u);  // 6 recorded, ring holds 4
  EXPECT_EQ(counters, 1u);
}

TEST(SpanProfiler, ExportToUnwritablePathFails) {
  SpanProfiler profiler(1, 4);
  EXPECT_FALSE(
      profiler.write_chrome_trace("/nonexistent_dir_zz/profile.json"));
}

}  // namespace
}  // namespace mach::obs
