// Span-profiler hot-path allocation test, riding in the test_allocation
// binary (tests/nn/test_allocation.cpp replaces the global allocation
// functions with counting wrappers there): recording a span on a bound
// thread must not allocate — the rings are pre-sized at construction — and
// a guard on an unbound thread must be a complete no-op.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "obs/span_profiler.h"

// The counting wrapper's counter (defined in tests/nn/test_allocation.cpp).
extern std::atomic<std::uint64_t> g_alloc_count;

namespace mach::obs {
namespace {

TEST(SpanAllocation, BoundGuardRecordsWithoutAllocating) {
  SpanProfiler profiler(2, 64);  // rings fully allocated here
  SpanProfiler::ThreadScope scope(&profiler, 1);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < 200; ++i) {
    SpanGuard outer("device_train", i, i % 8);
    SpanGuard inner("local_sgd", i, i % 8);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "span recording must stay allocation-free (incl. ring overflow)";

  EXPECT_EQ(profiler.spans_dropped(), 2 * 200 - 64);
}

TEST(SpanAllocation, UnboundGuardIsFree) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < 100; ++i) {
    SpanGuard guard("orphan", i);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(SpanAllocation, MergeAtBarrierMayAllocateButRecordingStaysClean) {
  SpanProfiler profiler(1, 32);
  // Reserve the master list by merging once with a full ring: subsequent
  // record+merge cycles of the same volume then stay allocation-free too.
  {
    SpanProfiler::ThreadScope scope(&profiler, 0);
    for (std::int64_t i = 0; i < 32; ++i) SpanGuard guard("warm", i);
  }
  profiler.merge_thread_rings();
  profiler.drain();  // moves the merged list out; capacity must be regrown

  {
    SpanProfiler::ThreadScope scope(&profiler, 0);
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (std::int64_t i = 0; i < 32; ++i) SpanGuard guard("steady", i);
    const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
  }
}

}  // namespace
}  // namespace mach::obs
