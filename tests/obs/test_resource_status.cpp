// Resource telemetry + status heartbeat suite: getrusage/statm snapshots,
// the decimating periodic sampler, hardware context for BENCH_*.json, and
// the atomic-rename status.json writer parsed back through obs/json.h.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/json.h"
#include "obs/resource.h"
#include "obs/status_writer.h"

namespace mach::obs {
namespace {

TEST(ResourceUsage, SnapshotIsPlausible) {
  const ResourceUsage usage = sample_resource_usage();
  EXPECT_GT(usage.peak_rss_kb, 0);
  EXPECT_GE(usage.user_cpu_seconds, 0.0);
  EXPECT_GE(usage.system_cpu_seconds, 0.0);
  EXPECT_GE(usage.minor_faults, 0);
  // statm and ru_maxrss account pages slightly differently, so only sanity:
  // both are positive for a running binary.
  EXPECT_GT(usage.current_rss_kb, 0);
}

TEST(ResourceSampler, NonPositiveIntervalFallsBackToTheDefault) {
  ResourceSampler sampler(/*interval_seconds=*/0.0, /*max_samples=*/64);
  EXPECT_EQ(sampler.interval_seconds(), 0.25);
  EXPECT_TRUE(sampler.maybe_sample());   // first call always captures
  EXPECT_FALSE(sampler.maybe_sample());  // gated by the default interval
  sampler.force_sample();
  EXPECT_EQ(sampler.samples().size(), 2u);
  for (std::size_t i = 1; i < sampler.samples().size(); ++i) {
    EXPECT_GE(sampler.samples()[i].elapsed_seconds,
              sampler.samples()[i - 1].elapsed_seconds);
  }
}

TEST(ResourceSampler, LargeIntervalSuppressesRepeatSamples) {
  ResourceSampler sampler(/*interval_seconds=*/3600.0);
  EXPECT_TRUE(sampler.maybe_sample());   // first call always captures
  EXPECT_FALSE(sampler.maybe_sample());  // inside the hour: suppressed
  sampler.force_sample();                // final snapshot bypasses the gate
  EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(ResourceSampler, DecimatesInsteadOfGrowingPastTheCap) {
  const std::size_t cap = 8;
  ResourceSampler sampler(/*interval_seconds=*/0.0, cap);
  const double initial_interval = sampler.interval_seconds();
  for (int i = 0; i < 40; ++i) sampler.force_sample();
  EXPECT_LE(sampler.samples().size(), cap);
  EXPECT_GE(sampler.samples().size(), cap / 2);
  // Each decimation doubles the interval so the thinned history stays even.
  EXPECT_GT(sampler.interval_seconds(), initial_interval);
  for (std::size_t i = 1; i < sampler.samples().size(); ++i) {
    EXPECT_GE(sampler.samples()[i].elapsed_seconds,
              sampler.samples()[i - 1].elapsed_seconds);
  }
}

TEST(ResourceSampler, LatestFallsBackToAFreshCapture) {
  const ResourceSampler sampler(/*interval_seconds=*/60.0);
  EXPECT_TRUE(sampler.samples().empty());
  EXPECT_GT(sampler.latest().usage.peak_rss_kb, 0);
}

TEST(HardwareInfo, ReportsThreadsAndEmbeddableJson) {
  const HardwareInfo info = read_hardware_info();
  EXPECT_GE(info.hardware_threads, 1u);
  EXPECT_FALSE(info.cpu_model.empty());
  EXPECT_GT(info.peak_rss_kb, 0);

  std::string error;
  const auto parsed = parse_json(hardware_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ((*parsed).string_or("cpu_model", ""), info.cpu_model);
  EXPECT_EQ((*parsed).number_or("hardware_threads", 0),
            static_cast<double>(info.hardware_threads));
  EXPECT_GT((*parsed).number_or("peak_rss_kb", 0), 0.0);
}

TEST(StatusWriter, WritesParseableDocumentAndCleansUpTheTemp) {
  const std::string path = ::testing::TempDir() + "status_writer_test.json";
  StatusWriter writer(path, /*interval_seconds=*/3600.0);

  StatusSnapshot snapshot;
  snapshot.sampler = "mach";
  snapshot.step = 7;
  snapshot.total_steps = 20;
  snapshot.cloud_rounds = 1;
  snapshot.devices_trained = 42;
  snapshot.devices_per_second = 10.5;
  snapshot.elapsed_seconds = 4.0;
  snapshot.eta_seconds = 7.4;
  snapshot.faults_lost = 3;
  snapshot.spans_dropped = 1;
  snapshot.current_rss_kb = 1000;
  snapshot.peak_rss_kb = 1200;
  ASSERT_TRUE(writer.write_now(snapshot));
  EXPECT_EQ(writer.writes(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  const auto parsed = parse_json(body, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue& doc = *parsed;
  EXPECT_EQ(doc.string_or("kind", ""), "mach_status");
  EXPECT_EQ(doc.number_or("sequence", 0), 1.0);
  EXPECT_EQ(doc.string_or("sampler", ""), "mach");
  EXPECT_EQ(doc.number_or("step", 0), 7.0);
  EXPECT_EQ(doc.number_or("total_steps", 0), 20.0);
  EXPECT_EQ(doc.number_or("devices_trained", 0), 42.0);
  EXPECT_EQ(doc.number_or("faults_lost", 0), 3.0);
  EXPECT_EQ(doc.number_or("spans_dropped", 0), 1.0);
  EXPECT_GT(doc.number_or("updated_unix", 0), 0.0);
  EXPECT_FALSE(doc["finished"].as_bool());

  // The rename consumed the temp file: only the final document remains.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(StatusWriter, IntervalGatesWritesButFinishedForcesOne) {
  const std::string path = ::testing::TempDir() + "status_writer_gate.json";
  StatusWriter writer(path, /*interval_seconds=*/3600.0);

  StatusSnapshot snapshot;
  snapshot.sampler = "uniform";
  EXPECT_TRUE(writer.maybe_write(snapshot));   // first write always lands
  EXPECT_FALSE(writer.maybe_write(snapshot));  // inside the hour: gated
  snapshot.finished = true;
  EXPECT_TRUE(writer.maybe_write(snapshot));   // final snapshot bypasses it
  EXPECT_EQ(writer.writes(), 2u);

  // The sequence number survives across writes (monotonic watcher signal).
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  const auto parsed = parse_json(body, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ((*parsed).number_or("sequence", 0), 2.0);
  EXPECT_TRUE((*parsed)["finished"].as_bool());
  std::remove(path.c_str());
}

TEST(StatusWriter, UnwritableDirectoryReportsFailure) {
  StatusWriter writer("/nonexistent_dir_zz/status.json", 0.5);
  EXPECT_FALSE(writer.write_now(StatusSnapshot{}));
}

}  // namespace
}  // namespace mach::obs
