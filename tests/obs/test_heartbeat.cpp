// Reader side of the status.json heartbeat plus the staleness logic the
// sweep orchestrator's watchdog is built on.
#include "obs/heartbeat.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/status_writer.h"

namespace {

using mach::obs::Heartbeat;
using mach::obs::HeartbeatMonitor;
using mach::obs::StatusSnapshot;
using mach::obs::StatusWriter;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

struct PathGuard {
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Heartbeat, RoundTripsThroughStatusWriter) {
  PathGuard guard(temp_path("hb_roundtrip"));
  StatusWriter writer(guard.path, 0.0);
  StatusSnapshot snapshot;
  snapshot.sampler = "mach";
  snapshot.step = 17;
  snapshot.total_steps = 40;
  ASSERT_TRUE(writer.write_now(snapshot));

  std::string error;
  const auto heartbeat = mach::obs::read_heartbeat(guard.path, &error);
  ASSERT_TRUE(heartbeat.has_value()) << error;
  EXPECT_EQ(heartbeat->sequence, 1u);
  EXPECT_EQ(heartbeat->pid, static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(heartbeat->step, 17u);
  EXPECT_EQ(heartbeat->total_steps, 40u);
  EXPECT_EQ(heartbeat->sampler, "mach");
  EXPECT_FALSE(heartbeat->finished);
  EXPECT_FALSE(heartbeat->aborted);
  EXPECT_GT(heartbeat->updated_unix, 0.0);
}

TEST(Heartbeat, AbortScopeProducesTerminalAbortedDocument) {
  PathGuard guard(temp_path("hb_abort"));
  {
    StatusWriter writer(guard.path, 0.0);
    StatusWriter::AbortScope scope(&writer);
    StatusSnapshot snapshot;
    snapshot.step = 3;
    snapshot.total_steps = 100;
    writer.write_now(snapshot);
    // Scope unwinds here, as if an exception tore through the run loop.
  }
  const auto heartbeat = mach::obs::read_heartbeat(guard.path);
  ASSERT_TRUE(heartbeat.has_value());
  EXPECT_TRUE(heartbeat->aborted);
  EXPECT_EQ(heartbeat->step, 3u);
  // A second sequence number proves the abort document was a fresh write,
  // not the original heartbeat re-read.
  EXPECT_EQ(heartbeat->sequence, 2u);
}

TEST(Heartbeat, AbortScopeIsSilentAfterFinishedWrite) {
  PathGuard guard(temp_path("hb_abort_finished"));
  {
    StatusWriter writer(guard.path, 0.0);
    StatusWriter::AbortScope scope(&writer);
    StatusSnapshot snapshot;
    snapshot.step = 100;
    snapshot.total_steps = 100;
    snapshot.finished = true;
    writer.write_now(snapshot);
  }
  const auto heartbeat = mach::obs::read_heartbeat(guard.path);
  ASSERT_TRUE(heartbeat.has_value());
  EXPECT_TRUE(heartbeat->finished);
  EXPECT_FALSE(heartbeat->aborted);
  EXPECT_EQ(heartbeat->sequence, 1u);
}

TEST(Heartbeat, UptimeIsMonotonicAcrossWrites) {
  PathGuard guard(temp_path("hb_uptime"));
  StatusWriter writer(guard.path, 0.0);
  StatusSnapshot snapshot;
  writer.write_now(snapshot);
  const auto first = mach::obs::read_heartbeat(guard.path);
  writer.write_now(snapshot);
  const auto second = mach::obs::read_heartbeat(guard.path);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_GE(second->uptime_ms, first->uptime_ms);
  EXPECT_EQ(second->sequence, first->sequence + 1);
}

TEST(Heartbeat, MissingAndMalformedFilesAreNotHeartbeats) {
  std::string error;
  EXPECT_FALSE(
      mach::obs::read_heartbeat(temp_path("hb_nonexistent"), &error).has_value());
  EXPECT_FALSE(error.empty());

  PathGuard garbage(temp_path("hb_garbage"));
  std::ofstream(garbage.path) << "not json at all {";
  EXPECT_FALSE(mach::obs::read_heartbeat(garbage.path, &error).has_value());

  PathGuard foreign(temp_path("hb_foreign"));
  std::ofstream(foreign.path) << R"({"kind":"something_else","step":4})";
  EXPECT_FALSE(mach::obs::read_heartbeat(foreign.path, &error).has_value());
  EXPECT_NE(error.find("mach_status"), std::string::npos);
}

TEST(Heartbeat, AgeClampsAtZero) {
  Heartbeat heartbeat;
  heartbeat.updated_unix = 1000.0;
  EXPECT_DOUBLE_EQ(mach::obs::heartbeat_age_seconds(heartbeat, 1012.5), 12.5);
  // Clock skew can make the writer's wall clock run ahead of ours.
  EXPECT_DOUBLE_EQ(mach::obs::heartbeat_age_seconds(heartbeat, 990.0), 0.0);
}

TEST(HeartbeatMonitor, FirstObservationCountsAsProgress) {
  HeartbeatMonitor monitor(100.0);
  Heartbeat heartbeat;
  heartbeat.pid = 42;
  heartbeat.sequence = 1;
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 103.0), 0.0);
  EXPECT_TRUE(monitor.ever_seen());
}

TEST(HeartbeatMonitor, UnchangedHeartbeatAccumulatesStaleness) {
  HeartbeatMonitor monitor(100.0);
  Heartbeat heartbeat;
  heartbeat.pid = 42;
  heartbeat.sequence = 5;
  heartbeat.uptime_ms = 1234;
  monitor.observe(heartbeat, 100.0);
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 101.0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 104.5), 4.5);
  // Any monotonic field advancing resets the staleness clock...
  heartbeat.uptime_ms = 1300;
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 105.0), 0.0);
  // ...and wall-clock-only changes do not exist in the tuple by design:
  // updated_unix is deliberately not consulted.
  heartbeat.updated_unix = 9.9e9;
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 107.0), 2.0);
}

TEST(HeartbeatMonitor, NewPidIsProgress) {
  // A retry spawns a fresh process that starts from sequence 1 again; the
  // pid change must register as progress even if sequence goes "backwards".
  HeartbeatMonitor monitor(50.0);
  Heartbeat heartbeat;
  heartbeat.pid = 100;
  heartbeat.sequence = 9;
  monitor.observe(heartbeat, 51.0);
  heartbeat.pid = 101;
  heartbeat.sequence = 1;
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 55.0), 0.0);
}

TEST(HeartbeatMonitor, MissingHeartbeatTimesOutFromSpawn) {
  HeartbeatMonitor monitor(200.0);
  EXPECT_DOUBLE_EQ(monitor.observe(std::nullopt, 203.0), 3.0);
  EXPECT_FALSE(monitor.ever_seen());
  // A heartbeat finally landing is progress from that moment on.
  Heartbeat heartbeat;
  heartbeat.pid = 7;
  EXPECT_DOUBLE_EQ(monitor.observe(heartbeat, 210.0), 0.0);
  // Its file disappearing again (run dir cleaned underfoot) is not progress.
  EXPECT_DOUBLE_EQ(monitor.observe(std::nullopt, 212.0), 2.0);
}

}  // namespace
