// MetricsRegistry semantics: counter monotonicity, gauge last-write,
// histogram bucket placement, handle stability and reset behaviour.
#include <gtest/gtest.h>

#include "obs/registry.h"

namespace mach::obs {
namespace {

TEST(Registry, CounterAccumulatesMonotonically) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument, not a fresh one.
  EXPECT_EQ(&registry.counter("events"), &c);
  EXPECT_EQ(registry.counter("events").value(), 42u);
}

TEST(Registry, GaugeKeepsLastWrite) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("lr");
  g.set(0.5);
  g.set(0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("lr").value(), 0.25);
}

TEST(Registry, HistogramBucketsByUpperBound) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q", {0.1, 0.5, 1.0});
  h.observe(0.05);   // <= 0.1        -> bucket 0
  h.observe(0.1);    // == bound 0.1  -> bucket 0 (inclusive upper bound)
  h.observe(0.3);    // <= 0.5        -> bucket 1
  h.observe(1.0);    // <= 1.0        -> bucket 2
  h.observe(7.0);    // overflow      -> bucket 3
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 8.45, 1e-12);
  EXPECT_NEAR(h.mean(), 8.45 / 5.0, 1e-12);
}

TEST(Registry, HistogramRejectsBadBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted", {1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("dupes", {0.5, 0.5}), std::invalid_argument);
}

TEST(Registry, HandlesSurviveFurtherRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("first");
  // Force growth: deque storage must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    registry.counter("extra_" + std::to_string(i)).add();
  }
  first.add(7);
  EXPECT_EQ(registry.counter("first").value(), 7u);
}

TEST(Registry, SnapshotListsEverything) {
  MetricsRegistry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);
  registry.gauge("g").set(3.5);
  registry.histogram("h", {1.0}).observe(0.5);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Alphabetical within each kind (map-ordered index).
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(Registry, ResetClearsStateKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  c.add(5);
  h.observe(1.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // Bounds survive the reset; only the observations are dropped.
  ASSERT_EQ(h.bounds().size(), 2u);
  h.observe(1.5);
  EXPECT_EQ(h.buckets()[1], 1u);
  c.add();
  EXPECT_EQ(registry.counter("c").value(), 1u);
}

}  // namespace
}  // namespace mach::obs
