// JSON writer/parser round-trips: everything JsonlTraceWriter emits must
// come back unchanged through parse_json (the same path trace_summary uses).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/json.h"

namespace mach::obs {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(JsonNumber, RendersFiniteValuesAndNullsNonFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(-3.5), "-3.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(JsonObjectWriter, EmitsParsableObject) {
  JsonObjectWriter out;
  out.begin();
  out.field("event", "edge_agg");
  out.field("t", std::uint64_t{7});
  out.field("acc", 0.875);
  out.field("ok", true);
  out.field("delta", std::int64_t{-3});
  out.field("q", std::vector<double>{0.1, 0.5, 1.0});
  out.field("buckets", std::vector<std::uint64_t>{1, 2, 3});
  out.raw_field("nested", "{\"k\":1}");
  const std::string line = out.end();

  std::string error;
  const auto parsed = parse_json(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error << " in: " << line;
  const JsonValue& v = *parsed;
  EXPECT_EQ(v["event"].as_string(), "edge_agg");
  EXPECT_DOUBLE_EQ(v["t"].as_number(), 7.0);
  EXPECT_DOUBLE_EQ(v["acc"].as_number(), 0.875);
  EXPECT_TRUE(v["ok"].as_bool());
  EXPECT_DOUBLE_EQ(v["delta"].as_number(), -3.0);
  ASSERT_EQ(v["q"].as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v["q"].as_array()[1].as_number(), 0.5);
  ASSERT_EQ(v["buckets"].as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v["nested"]["k"].as_number(), 1.0);
}

TEST(JsonObjectWriter, StringValuesAreEscapedOnTheWire) {
  JsonObjectWriter out;
  out.begin();
  out.field("name", "quo\"te\nline");
  const auto parsed = parse_json(out.end());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["name"].as_string(), "quo\"te\nline");
}

TEST(ParseJson, HandlesScalarsArraysAndNesting) {
  const auto v = parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"c": null, "d": false}, "s": "Aé"})");
  ASSERT_TRUE(v.has_value());
  const auto& arr = (*v)["a"].as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[2].as_number(), -300.0);
  EXPECT_TRUE((*v)["b"]["c"].is_null());
  EXPECT_FALSE((*v)["b"]["d"].as_bool());
  EXPECT_EQ((*v)["s"].as_string(), "A\xc3\xa9");  // UTF-8 for "Aé"
}

TEST(ParseJson, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("nul").has_value());
}

TEST(ParseJson, RejectsTruncatedInput) {
  // Every prefix of a valid document must fail cleanly, never crash or
  // accept — this is what a half-written trace line looks like after a
  // killed run.
  const std::string full =
      R"({"event":"edge_agg","t":3,"faults":{"survivors":[1,2],"lost":[]}})";
  std::string error;
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string prefix = full.substr(0, len);
    EXPECT_FALSE(parse_json(prefix, &error).has_value()) << "prefix: " << prefix;
    EXPECT_FALSE(error.empty());
  }
  EXPECT_TRUE(parse_json(full).has_value());
  // Truncation inside a string literal and inside an escape sequence.
  EXPECT_FALSE(parse_json(R"({"s":"unterminated)").has_value());
  EXPECT_FALSE(parse_json("{\"s\":\"half-escape\\").has_value());
}

TEST(ParseJson, EscapedStringsRoundTrip) {
  const auto v = parse_json(
      R"({"s":"tab\tnl\nquote\"back\\slash\/cr\rbs\bff\f"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)["s"].as_string(), "tab\tnl\nquote\"back\\slash/cr\rbs\bff\f");
  // Unknown escapes are rejected, not passed through silently.
  EXPECT_FALSE(parse_json(R"({"s":"\q"})").has_value());
}

TEST(ParseJson, DeepNestingIsCappedAt128Levels) {
  const auto nested = [](std::size_t depth) {
    std::string text(depth, '[');
    text += "1";
    text.append(depth, ']');
    return text;
  };
  // One level under the cap parses; one level over fails with the guard's
  // message instead of blowing the parser stack.
  EXPECT_TRUE(parse_json(nested(127)).has_value());
  std::string error;
  EXPECT_FALSE(parse_json(nested(129), &error).has_value());
  EXPECT_NE(error.find("nesting deeper than 128 levels"), std::string::npos)
      << error;
  // Same guard on the object side.
  std::string objects;
  for (std::size_t i = 0; i < 200; ++i) objects += "{\"k\":";
  objects += "1";
  objects.append(200, '}');
  EXPECT_FALSE(parse_json(objects, &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos);
  // Mixed nesting exactly at the cap still parses.
  std::string mixed = "{\"k\":";
  mixed += nested(126);
  mixed += "}";
  EXPECT_TRUE(parse_json(mixed).has_value()) << mixed.substr(0, 40);
}

TEST(JsonValue, LenientLookupsNeverThrow) {
  const auto v = parse_json(R"({"x": 1.5, "s": "hi"})");
  ASSERT_TRUE(v.has_value());
  // Missing keys yield null and the *_or readers fall back.
  EXPECT_TRUE((*v)["missing"].is_null());
  EXPECT_TRUE((*v)["missing"]["deeper"].is_null());
  EXPECT_DOUBLE_EQ(v->number_or("x", -1.0), 1.5);
  EXPECT_DOUBLE_EQ(v->number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v->number_or("s", -1.0), -1.0);  // mistyped -> fallback
  EXPECT_EQ(v->string_or("s", "fb"), "hi");
  EXPECT_EQ(v->string_or("x", "fb"), "fb");
  // Strict accessors still throw on mismatch.
  EXPECT_THROW((*v)["s"].as_number(), std::logic_error);
}

}  // namespace
}  // namespace mach::obs
