// Phase timer semantics: accumulator statistics, RAII charging, and
// monotonicity of the measured durations.
#include <gtest/gtest.h>

#include <thread>

#include "obs/timer.h"

namespace mach::obs {
namespace {

TEST(PhaseAccumulator, TracksCountTotalMinMax) {
  PhaseAccumulator acc;
  EXPECT_EQ(acc.count, 0u);
  EXPECT_DOUBLE_EQ(acc.mean_seconds(), 0.0);
  acc.add(2.0);
  acc.add(1.0);
  acc.add(4.0);
  EXPECT_EQ(acc.count, 3u);
  EXPECT_DOUBLE_EQ(acc.total_seconds, 7.0);
  EXPECT_DOUBLE_EQ(acc.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(acc.max_seconds, 4.0);
  EXPECT_NEAR(acc.mean_seconds(), 7.0 / 3.0, 1e-12);
}

TEST(PhaseTimerSet, IndexesByPhaseAndSumsTotals) {
  PhaseTimerSet timers;
  timers[Phase::DeviceTraining].add(0.5);
  timers[Phase::Evaluation].add(0.25);
  EXPECT_DOUBLE_EQ(timers[Phase::DeviceTraining].total_seconds, 0.5);
  EXPECT_DOUBLE_EQ(timers.total_seconds(), 0.75);
  timers.reset();
  EXPECT_EQ(timers[Phase::DeviceTraining].count, 0u);
  EXPECT_DOUBLE_EQ(timers.total_seconds(), 0.0);
}

TEST(PhaseNames, AreStableAndDistinct) {
  EXPECT_EQ(phase_name(Phase::SamplerDecision), "sampler_decision");
  EXPECT_EQ(phase_name(Phase::DeviceTraining), "device_training");
  EXPECT_EQ(phase_name(Phase::EdgeAggregation), "edge_aggregation");
  EXPECT_EQ(phase_name(Phase::CloudAggregation), "cloud_aggregation");
  EXPECT_EQ(phase_name(Phase::Evaluation), "evaluation");
}

TEST(ScopedTimer, ChargesScopeDurationOnDestruction) {
  PhaseTimerSet timers;
  {
    ScopedTimer timer(timers, Phase::CloudAggregation);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // Nothing is recorded until the scope closes.
    EXPECT_EQ(timers[Phase::CloudAggregation].count, 0u);
    EXPECT_GT(timer.elapsed_seconds(), 0.0);
  }
  const PhaseAccumulator& acc = timers[Phase::CloudAggregation];
  EXPECT_EQ(acc.count, 1u);
  EXPECT_GE(acc.total_seconds, 0.002 * 0.5);  // generous slack for coarse clocks
  EXPECT_DOUBLE_EQ(acc.min_seconds, acc.max_seconds);
}

TEST(ScopedTimer, ElapsedIsMonotonic) {
  PhaseTimerSet timers;
  ScopedTimer timer(timers, Phase::SamplerDecision);
  double last = timer.elapsed_seconds();
  for (int i = 0; i < 100; ++i) {
    const double now = timer.elapsed_seconds();
    EXPECT_GE(now, last);  // steady_clock never goes backwards
    last = now;
  }
}

TEST(Stopwatch, SecondsGrowAcrossSleep) {
  Stopwatch watch;
  const double before = watch.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double after = watch.seconds();
  EXPECT_GE(before, 0.0);
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace mach::obs
