// bench_compare suite (the library behind tools/bench_diff and the CI perf
// gate): metric-direction inference, case matching on identity fields,
// signed-delta conventions and the regression gate, including the injected
// synthetic-regression scenario the gate exists for.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/bench_compare.h"
#include "obs/json.h"

namespace mach::obs {
namespace {

JsonValue parse(const std::string& text) {
  std::string error;
  const auto parsed = parse_json(text, &error);
  EXPECT_TRUE(parsed.has_value()) << error << " in: " << text;
  return parsed ? *parsed : JsonValue();
}

// A two-case kernels-style document; gflops/speedup gate, dims identify.
const char* kBaseline = R"({
  "bench": "kernels",
  "results": [
    {"case": "a", "m": 64, "k": 32, "n": 10, "blocked_gflops": 10.0,
     "speedup": 2.0, "wall_seconds": 1.0, "devices_trained": 100},
    {"case": "b", "m": 128, "k": 64, "n": 10, "blocked_gflops": 5.0,
     "speedup": 1.5, "wall_seconds": 2.0, "devices_trained": 100}
  ]
})";

TEST(MetricDirection, NameConventionMatchesTheEmitters) {
  EXPECT_EQ(metric_direction("devices_per_second"),
            MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("blocked_gflops"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("speedup_vs_serial"),
            MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("wall_seconds"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("seconds"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("mean_ms"), MetricDirection::LowerIsBetter);
  // Communication volume (BENCH_comm.json): more bytes is a regression.
  EXPECT_EQ(metric_direction("device_upload_bytes"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("total_bytes"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("bytes_per_round"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("final_accuracy"),
            MetricDirection::HigherIsBetter);
  // Memory envelope (BENCH_scale.json): a fatter RSS is a regression.
  EXPECT_EQ(metric_direction("peak_rss_kb"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("current_rss_kb"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("per_device_bytes"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("devices_trained"),
            MetricDirection::Informational);
  EXPECT_EQ(metric_direction("count"), MetricDirection::Informational);
  EXPECT_EQ(metric_direction("case"), MetricDirection::Identity);
  EXPECT_EQ(metric_direction("m"), MetricDirection::Identity);
  EXPECT_EQ(metric_direction("threads"), MetricDirection::Identity);
}

TEST(BenchCompare, SelfComparisonReportsNoRegression) {
  const JsonValue doc = parse(kBaseline);
  const BenchComparison comparison = compare_benchmarks(doc, doc);
  EXPECT_EQ(comparison.bench, "kernels");
  EXPECT_FALSE(comparison.bench_mismatch);
  ASSERT_EQ(comparison.cases.size(), 2u);
  EXPECT_TRUE(comparison.only_in_baseline.empty());
  EXPECT_TRUE(comparison.only_in_current.empty());
  EXPECT_EQ(comparison.worst_regression_pct, 0.0);
  EXPECT_FALSE(comparison.regression_beyond(0.0));
  for (const CaseDelta& case_delta : comparison.cases) {
    for (const MetricDelta& metric : case_delta.metrics) {
      EXPECT_EQ(metric.change_pct, 0.0) << metric.metric;
      EXPECT_EQ(metric.baseline, metric.current) << metric.metric;
    }
  }
}

TEST(BenchCompare, InjectedTwentyPercentRegressionTripsTheGate) {
  const JsonValue baseline = parse(kBaseline);
  // Case "a" loses 20% of its gflops; everything else is unchanged.
  JsonValue current = parse(R"({
    "bench": "kernels",
    "results": [
      {"case": "a", "m": 64, "k": 32, "n": 10, "blocked_gflops": 8.0,
       "speedup": 2.0, "wall_seconds": 1.0, "devices_trained": 100},
      {"case": "b", "m": 128, "k": 64, "n": 10, "blocked_gflops": 5.0,
       "speedup": 1.5, "wall_seconds": 2.0, "devices_trained": 100}
    ]
  })");
  const BenchComparison comparison = compare_benchmarks(baseline, current);
  EXPECT_NEAR(comparison.worst_regression_pct, 20.0, 1e-9);
  EXPECT_EQ(comparison.worst_metric, "blocked_gflops");
  EXPECT_TRUE(comparison.regression_beyond(10.0));
  EXPECT_FALSE(comparison.regression_beyond(25.0));
  EXPECT_NE(format_comparison(comparison, 10.0).find("REGRESSION"),
            std::string::npos);
}

TEST(BenchCompare, LowerIsBetterMetricsRegressWhenTheyGrow) {
  const JsonValue baseline =
      parse(R"({"bench": "b", "results": [{"case": "x", "wall_seconds": 1.0}]})");
  const JsonValue current =
      parse(R"({"bench": "b", "results": [{"case": "x", "wall_seconds": 1.5}]})");
  const BenchComparison comparison = compare_benchmarks(baseline, current);
  ASSERT_EQ(comparison.cases.size(), 1u);
  ASSERT_EQ(comparison.cases[0].metrics.size(), 1u);
  // +50% wall time = -50% change (positive change_pct always = improvement).
  EXPECT_NEAR(comparison.cases[0].metrics[0].change_pct, -50.0, 1e-9);
  EXPECT_NEAR(comparison.worst_regression_pct, 50.0, 1e-9);
}

TEST(BenchCompare, InformationalMetricsNeverGate) {
  const JsonValue baseline = parse(
      R"({"bench": "b", "results": [{"case": "x", "devices_trained": 100}]})");
  const JsonValue current = parse(
      R"({"bench": "b", "results": [{"case": "x", "devices_trained": 50}]})");
  const BenchComparison comparison = compare_benchmarks(baseline, current);
  EXPECT_EQ(comparison.worst_regression_pct, 0.0);
  EXPECT_FALSE(comparison.regression_beyond(0.0));
}

TEST(BenchCompare, UnmatchedCasesAreListedNotGated) {
  const JsonValue baseline = parse(
      R"({"bench": "b", "results": [{"case": "old", "speedup": 2.0}]})");
  const JsonValue current = parse(
      R"({"bench": "b", "results": [{"case": "new", "speedup": 1.0}]})");
  const BenchComparison comparison = compare_benchmarks(baseline, current);
  ASSERT_EQ(comparison.only_in_baseline.size(), 1u);
  EXPECT_EQ(comparison.only_in_baseline[0], "case=old");
  ASSERT_EQ(comparison.only_in_current.size(), 1u);
  EXPECT_EQ(comparison.only_in_current[0], "case=new");
  EXPECT_EQ(comparison.worst_regression_pct, 0.0);
  const std::string report = format_comparison(comparison, 10.0);
  EXPECT_NE(report.find("missing from current"), std::string::npos);
  EXPECT_NE(report.find("new in current"), std::string::npos);
}

TEST(BenchCompare, DifferentBenchNamesFlagAMismatch) {
  const JsonValue kernels = parse(R"({"bench": "kernels", "results": []})");
  const JsonValue runtime = parse(R"({"bench": "runtime", "results": []})");
  const BenchComparison comparison = compare_benchmarks(kernels, runtime);
  EXPECT_TRUE(comparison.bench_mismatch);
  EXPECT_NE(format_comparison(comparison, 10.0).find("MISMATCH"),
            std::string::npos);
}

TEST(BenchCompare, LoadBenchFileReportsMissingAndMalformed) {
  std::string error;
  EXPECT_FALSE(load_bench_file("/nonexistent_dir_zz/BENCH.json", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const std::string path = ::testing::TempDir() + "malformed_bench.json";
  {
    std::ofstream out(path);
    out << "{not json";
  }
  error.clear();
  EXPECT_FALSE(load_bench_file(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());

  {
    std::ofstream out(path);
    out << R"({"bench": "kernels", "results": []})";
  }
  const auto doc = load_bench_file(path, &error);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("bench", ""), "kernels");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mach::obs
