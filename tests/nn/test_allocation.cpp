// Steady-state allocation test: once training is warm, a full MNIST-CNN
// training step (forward + backward + SGD update) must perform ZERO heap
// allocations. The conv scratch lives in per-layer arenas, GEMM pack buffers
// are thread-local and grown once, layer activations are cached tensors, and
// the optimiser walks the model's cached parameter refs — so after a few
// warm-up steps nothing on the hot path should touch the allocator.
//
// Mechanism: this TU replaces the global allocation functions with counting
// wrappers (affecting the whole test binary, which is fine — we only compare
// the counter across a region that runs nothing but the hot path).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/factory.h"
#include "nn/sgd.h"
#include "tensor/tensor.h"

// Shared with the other suites in this binary (e.g. the span-guard
// allocation test): external linkage, declared extern where used.
std::atomic<std::uint64_t> g_alloc_count{0};

namespace {

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(alignment, (size + alignment - 1) / alignment * alignment)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace mach::nn {
namespace {

TEST(SteadyStateAllocation, MnistCnnTrainingStepAllocatesNothing) {
  common::Rng rng(42);
  Sequential model = make_cnn2(1, 28, 28, 10);
  model.init_params(rng);
  Sgd sgd({.learning_rate = 0.01, .momentum = 0.9, .weight_decay = 1e-4});

  const std::size_t batch = 32;
  tensor::Tensor input({batch, 1, 28, 28});
  for (auto& v : input.flat()) v = static_cast<float>(rng.normal());
  std::vector<int> labels(batch);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(10));
  const std::span<const int> label_span(labels);

  // Warm-up: grows arenas, pack buffers, cached activations, velocity
  // buffers and the cached param refs.
  for (int step = 0; step < 3; ++step) {
    model.forward_backward(input, label_span);
    sgd.step(model);
  }

  const std::size_t grow_events_before = model.scratch_grow_events();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int step = 0; step < 5; ++step) {
    const StepStats stats = model.forward_backward(input, label_span);
    sgd.step(model);
    ASSERT_GT(stats.batch_size, 0u);
  }
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "warm MNIST-CNN training steps must not allocate";
  EXPECT_EQ(model.scratch_grow_events(), grow_events_before)
      << "scratch arenas must not grow once warm";
}

TEST(SteadyStateAllocation, EvaluationIsAllocationFreeWhenWarm) {
  common::Rng rng(7);
  Sequential model = make_cnn2(1, 28, 28, 10);
  model.init_params(rng);

  const std::size_t batch = 16;
  tensor::Tensor input({batch, 1, 28, 28});
  for (auto& v : input.flat()) v = static_cast<float>(rng.normal());
  std::vector<int> labels(batch);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(10));
  const std::span<const int> label_span(labels);

  for (int i = 0; i < 2; ++i) model.evaluate(input, label_span);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 3; ++i) model.evaluate(input, label_span);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace mach::nn
