// Dropout, Adam and checkpoint serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/model.h"
#include "nn/serialize.h"

namespace mach::nn {
namespace {

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(-0.1), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0), std::invalid_argument);
  EXPECT_NO_THROW(Dropout(0.0));
  EXPECT_NO_THROW(Dropout(0.99));
}

TEST(Dropout, EvalModeIsPassThrough) {
  Dropout layer(0.5);
  layer.set_training(false);
  tensor::Tensor x({1, 8}, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto& y = layer.forward(x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingZeroesApproximatelyRateFraction) {
  Dropout layer(0.4, 7);
  layer.set_training(true);
  tensor::Tensor x({1, 10000});
  x.fill(1.0f);
  const auto& y = layer.forward(x);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < x.numel(); ++i) zeros += y[i] == 0.0f ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.4, 0.03);
  // Inverted scaling keeps the expectation: survivors are 1/(1-0.4).
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (y[i] != 0.0f) EXPECT_NEAR(y[i], 1.0f / 0.6f, 1e-5);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout layer(0.5, 9);
  tensor::Tensor x({1, 100});
  x.fill(2.0f);
  const auto& y = layer.forward(x);
  tensor::Tensor g({1, 100});
  g.fill(1.0f);
  const auto& gin = layer.backward(g);
  for (std::size_t i = 0; i < 100; ++i) {
    if (y[i] == 0.0f) {
      EXPECT_FLOAT_EQ(gin[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(gin[i], 2.0f);  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, SequentialTogglesMode) {
  Sequential model;
  model.add(std::make_unique<Dense>(4, 4))
      .add(std::make_unique<Dropout>(0.9, 11))
      .add(std::make_unique<Dense>(4, 2));
  common::Rng rng(1);
  model.init_params(rng);
  tensor::Tensor x({8, 4});
  for (auto& v : x.flat()) v = 1.0f;
  const std::vector<int> labels = {0, 1, 0, 1, 0, 1, 0, 1};
  // evaluate() must be deterministic (dropout off).
  const double loss_a = model.evaluate(x, labels).loss;
  const double loss_b = model.evaluate(x, labels).loss;
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
}

TEST(Adam, FirstStepMatchesClosedForm) {
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1));
  auto params = model.params();
  params[0].value->flat()[0] = 1.0f;
  params[0].grad->flat()[0] = 0.5f;
  params[1].value->flat()[0] = 0.0f;
  params[1].grad->flat()[0] = 0.0f;
  Adam adam({.learning_rate = 0.1, .beta1 = 0.9, .beta2 = 0.999, .epsilon = 1e-8});
  adam.step(model);
  // Bias-corrected first step is -lr * sign(g) (for g != 0).
  EXPECT_NEAR(params[0].value->flat()[0], 1.0f - 0.1f, 1e-5);
  EXPECT_FLOAT_EQ(params[1].value->flat()[0], 0.0f);
  EXPECT_EQ(adam.steps_taken(), 1u);
}

TEST(Adam, ResetClearsState) {
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1));
  auto params = model.params();
  params[0].grad->flat()[0] = 1.0f;
  Adam adam({.learning_rate = 0.1});
  adam.step(model);
  adam.reset();
  EXPECT_EQ(adam.steps_taken(), 0u);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise (w - 3)^2 by feeding grad = 2(w - 3).
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1));
  auto params = model.params();
  params[0].value->flat()[0] = 0.0f;
  params[1].value->flat()[0] = 0.0f;
  Adam adam({.learning_rate = 0.1});
  for (int i = 0; i < 500; ++i) {
    const float w = params[0].value->flat()[0];
    params[0].grad->flat()[0] = 2.0f * (w - 3.0f);
    params[1].grad->flat()[0] = 0.0f;
    adam.step(model);
  }
  EXPECT_NEAR(params[0].value->flat()[0], 3.0f, 0.05f);
}

TEST(Serialize, RoundTrip) {
  Sequential model;
  model.add(std::make_unique<Dense>(3, 4));
  common::Rng rng(5);
  model.init_params(rng);
  const auto original = model.get_parameters();
  const std::string path = testing::TempDir() + "weights.mach";
  ASSERT_NO_THROW(save_parameters(model, path));

  // Perturb, reload, verify restoration.
  std::vector<float> zeros(original.size(), 0.0f);
  model.set_parameters(zeros);
  load_parameters(model, path);
  EXPECT_EQ(model.get_parameters(), original);
  std::remove(path.c_str());
}

TEST(Serialize, CountMismatchThrows) {
  Sequential small;
  small.add(std::make_unique<Dense>(2, 2));
  Sequential big;
  big.add(std::make_unique<Dense>(4, 4));
  common::Rng rng(6);
  small.init_params(rng);
  const std::string path = testing::TempDir() + "weights_small.mach";
  ASSERT_NO_THROW(save_parameters(small, path));
  EXPECT_THROW(load_parameters(big, path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Sequential model;
  model.add(std::make_unique<Dense>(2, 2));
  EXPECT_THROW(load_parameters(model, "/no/such/weights.mach"), std::runtime_error);
}

TEST(Serialize, CorruptMagicThrows) {
  const std::string path = testing::TempDir() + "corrupt.mach";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  Sequential model;
  model.add(std::make_unique<Dense>(2, 2));
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mach::nn
