#include "nn/layernorm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model.h"

namespace mach::nn {
namespace {

TEST(LayerNorm, RejectsZeroFeatures) {
  EXPECT_THROW(LayerNorm(0), std::invalid_argument);
}

TEST(LayerNorm, NormalisesEachRow) {
  LayerNorm layer(4);
  tensor::Tensor x({2, 4}, {1, 2, 3, 4, 10, 10, 10, 30});
  const auto& y = layer.forward(x);
  for (std::size_t r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < 4; ++c) mean += y.at2(r, c);
    mean /= 4.0;
    for (std::size_t c = 0; c < 4; ++c) {
      var += (y.at2(r, c) - mean) * (y.at2(r, c) - mean);
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GainAndBiasApplied) {
  LayerNorm layer(2);
  auto params = layer.params();
  params[0].value->flat()[0] = 2.0f;  // gain
  params[0].value->flat()[1] = 2.0f;
  params[1].value->flat()[0] = 5.0f;  // bias
  params[1].value->flat()[1] = 5.0f;
  tensor::Tensor x({1, 2}, {-1, 1});
  const auto& y = layer.forward(x);
  // x_hat = {-1, 1} (unit variance already); y = 2*x_hat + 5.
  EXPECT_NEAR(y[0], 3.0f, 1e-4);
  EXPECT_NEAR(y[1], 7.0f, 1e-4);
}

TEST(LayerNorm, ShapeValidation) {
  LayerNorm layer(3);
  tensor::Tensor bad({2, 4});
  EXPECT_THROW(layer.forward(bad), std::invalid_argument);
}

TEST(LayerNorm, GradCheckThroughModel) {
  // Numerical gradient check of a Dense -> LayerNorm -> Dense stack.
  Sequential model;
  model.add(std::make_unique<Dense>(5, 4))
      .add(std::make_unique<LayerNorm>(4))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(4, 3));
  common::Rng rng(3);
  model.init_params(rng);
  tensor::Tensor x({3, 5});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> labels = {0, 2, 1};

  model.forward_backward(x, labels);
  const std::vector<float> analytic = model.get_gradients();

  auto params = model.params();
  const float eps = 1e-2f;
  std::size_t offset = 0;
  for (auto& ref : params) {
    auto values = ref.value->flat();
    const std::size_t stride = std::max<std::size_t>(values.size() / 4, 1);
    for (std::size_t j = 0; j < values.size(); j += stride) {
      const float original = values[j];
      values[j] = original + eps;
      const double plus = model.evaluate(x, labels).loss;
      values[j] = original - eps;
      const double minus = model.evaluate(x, labels).loss;
      values[j] = original;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double a = analytic[offset + j];
      const double scale = std::max({std::abs(a), std::abs(numeric), 0.05});
      EXPECT_LT(std::abs(a - numeric) / scale, 0.2)
          << ref.name << " idx " << j << " analytic=" << a
          << " numeric=" << numeric;
    }
    offset += values.size();
  }
}

TEST(LayerNorm, InitResetsAffineParams) {
  LayerNorm layer(3);
  auto params = layer.params();
  params[0].value->fill(9.0f);
  params[1].value->fill(-9.0f);
  common::Rng rng(4);
  layer.init_params(rng);
  for (float v : params[0].value->flat()) EXPECT_FLOAT_EQ(v, 1.0f);
  for (float v : params[1].value->flat()) EXPECT_FLOAT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace mach::nn
