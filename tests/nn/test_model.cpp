#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/factory.h"
#include "nn/model.h"
#include "nn/sgd.h"

namespace mach::nn {
namespace {

Sequential small_mlp() {
  Sequential m;
  m.add(std::make_unique<Dense>(4, 8))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(8, 2));
  return m;
}

TEST(Sequential, NumParameters) {
  Sequential m = small_mlp();
  // 4*8 + 8 + 8*2 + 2 = 58
  EXPECT_EQ(m.num_parameters(), 58u);
}

TEST(Sequential, GetSetParametersRoundTrip) {
  Sequential m = small_mlp();
  common::Rng rng(1);
  m.init_params(rng);
  const auto original = m.get_parameters();
  ASSERT_EQ(original.size(), 58u);

  std::vector<float> modified(original.size());
  for (std::size_t i = 0; i < modified.size(); ++i) {
    modified[i] = static_cast<float>(i) * 0.1f;
  }
  m.set_parameters(modified);
  EXPECT_EQ(m.get_parameters(), modified);
  m.set_parameters(original);
  EXPECT_EQ(m.get_parameters(), original);
}

TEST(Sequential, SetParametersValidatesLength) {
  Sequential m = small_mlp();
  std::vector<float> too_short(10, 0.0f);
  EXPECT_THROW(m.set_parameters(too_short), std::invalid_argument);
  std::vector<float> too_long(100, 0.0f);
  EXPECT_THROW(m.set_parameters(too_long), std::invalid_argument);
}

TEST(Sequential, ForwardOnEmptyModelThrows) {
  Sequential m;
  tensor::Tensor x({1, 4});
  EXPECT_THROW(m.forward(x), std::logic_error);
}

TEST(Sequential, EvaluateDoesNotChangeParameters) {
  Sequential m = small_mlp();
  common::Rng rng(2);
  m.init_params(rng);
  const auto before = m.get_parameters();
  tensor::Tensor x({3, 4});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> labels = {0, 1, 0};
  m.evaluate(x, labels);
  EXPECT_EQ(m.get_parameters(), before);
}

TEST(Sequential, StepStatsConsistent) {
  Sequential m = small_mlp();
  common::Rng rng(3);
  m.init_params(rng);
  tensor::Tensor x({5, 4});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> labels = {0, 1, 0, 1, 1};
  const StepStats stats = m.forward_backward(x, labels);
  EXPECT_EQ(stats.batch_size, 5u);
  EXPECT_LE(stats.correct, 5u);
  EXPECT_GT(stats.loss, 0.0);
  EXPECT_GT(stats.grad_squared_norm, 0.0);

  // grad_squared_norm must equal the norm of the flattened gradient vector.
  double manual = 0.0;
  for (float g : m.get_gradients()) manual += static_cast<double>(g) * g;
  EXPECT_NEAR(stats.grad_squared_norm, manual, 1e-9);
}

TEST(Sgd, SingleStepMatchesManualUpdate) {
  Sequential m;
  m.add(std::make_unique<Dense>(2, 1));
  auto params = m.params();
  params[0].value->flat()[0] = 1.0f;
  params[0].value->flat()[1] = 2.0f;
  params[1].value->flat()[0] = 0.5f;
  params[0].grad->flat()[0] = 0.1f;
  params[0].grad->flat()[1] = -0.2f;
  params[1].grad->flat()[0] = 0.3f;

  Sgd sgd({.learning_rate = 0.5});
  sgd.step(m);
  EXPECT_FLOAT_EQ(params[0].value->flat()[0], 1.0f - 0.5f * 0.1f);
  EXPECT_FLOAT_EQ(params[0].value->flat()[1], 2.0f + 0.5f * 0.2f);
  EXPECT_FLOAT_EQ(params[1].value->flat()[0], 0.5f - 0.5f * 0.3f);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Sequential m;
  m.add(std::make_unique<Dense>(1, 1));
  auto params = m.params();
  params[0].value->flat()[0] = 2.0f;
  params[0].grad->flat()[0] = 0.0f;
  params[1].value->flat()[0] = 0.0f;
  params[1].grad->flat()[0] = 0.0f;
  Sgd sgd({.learning_rate = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  sgd.step(m);
  EXPECT_FLOAT_EQ(params[0].value->flat()[0], 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Sequential m;
  m.add(std::make_unique<Dense>(1, 1));
  auto params = m.params();
  params[0].value->flat()[0] = 0.0f;
  params[1].value->flat()[0] = 0.0f;
  params[0].grad->flat()[0] = 1.0f;
  params[1].grad->flat()[0] = 0.0f;
  Sgd sgd({.learning_rate = 1.0, .momentum = 0.5});
  sgd.step(m);  // v=1, w=-1
  EXPECT_FLOAT_EQ(params[0].value->flat()[0], -1.0f);
  sgd.step(m);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(params[0].value->flat()[0], -2.5f);
  sgd.reset();
  sgd.step(m);  // v resets to 1 -> w=-3.5
  EXPECT_FLOAT_EQ(params[0].value->flat()[0], -3.5f);
}

TEST(Training, LossDecreasesOnSeparableData) {
  // Two Gaussian blobs in 4-D, labels 0/1: a few SGD epochs must cut loss.
  common::Rng rng(7);
  Sequential m = small_mlp();
  m.init_params(rng);
  const std::size_t n = 64;
  tensor::Tensor x({n, 4});
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double center = labels[i] == 0 ? -1.5 : 1.5;
    for (std::size_t j = 0; j < 4; ++j) {
      x.at2(i, j) = static_cast<float>(rng.normal(center, 0.5));
    }
  }
  Sgd sgd({.learning_rate = 0.1});
  const double initial_loss = m.evaluate(x, labels).loss;
  for (int epoch = 0; epoch < 50; ++epoch) {
    m.forward_backward(x, labels);
    sgd.step(m);
  }
  const StepStats final = m.evaluate(x, labels);
  EXPECT_LT(final.loss, initial_loss * 0.5);
  EXPECT_GT(static_cast<double>(final.correct) / n, 0.95);
}

TEST(Factory, Cnn2RejectsBadDimensions) {
  EXPECT_THROW(make_cnn2(1, 10, 12, 10), std::invalid_argument);
  EXPECT_NO_THROW(make_cnn2(1, 12, 12, 10));
}

TEST(Factory, Cnn3RejectsBadDimensions) {
  EXPECT_THROW(make_cnn3(3, 12, 16, 10), std::invalid_argument);
  EXPECT_NO_THROW(make_cnn3(3, 16, 16, 10));
}

TEST(Factory, MlpShapes) {
  Sequential m = make_mlp(10, 6, 3);
  common::Rng rng(8);
  m.init_params(rng);
  tensor::Tensor x({2, 10});
  EXPECT_EQ(m.forward(x).shape(), (std::vector<std::size_t>{2, 3}));
}

}  // namespace
}  // namespace mach::nn
