#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"

namespace mach::nn {
namespace {

TEST(Dense, ForwardShapeAndBias) {
  Dense layer(3, 2);
  common::Rng rng(1);
  layer.init_params(rng);
  // Zero the weights, set bias to known values -> output equals bias.
  auto params = layer.params();
  params[0].value->zero();
  (*params[1].value)[0] = 1.5f;
  (*params[1].value)[1] = -2.0f;
  tensor::Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto& y = layer.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at2(1, 1), -2.0f);
}

TEST(Dense, ForwardRejectsBadShape) {
  Dense layer(3, 2);
  tensor::Tensor x({2, 4});
  EXPECT_THROW(layer.forward(x), std::invalid_argument);
}

TEST(Dense, ParamsExposeWeightAndBias) {
  Dense layer(4, 5);
  const auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].value->numel(), 20u);
  EXPECT_EQ(params[1].value->numel(), 5u);
  EXPECT_EQ(params[0].name, "weight");
  EXPECT_EQ(params[1].name, "bias");
}

TEST(Dense, InitParamsHeScale) {
  Dense layer(1000, 10);
  common::Rng rng(2);
  layer.init_params(rng);
  const auto params = layer.params();
  double m2 = 0.0;
  for (float w : params[0].value->flat()) m2 += static_cast<double>(w) * w;
  const double variance = m2 / static_cast<double>(params[0].value->numel());
  EXPECT_NEAR(variance, 2.0 / 1000.0, 2e-4);  // He: var = 2/fan_in
  for (float b : params[1].value->flat()) EXPECT_EQ(b, 0.0f);
}

TEST(Dense, HandlesVaryingBatchSizes) {
  Dense layer(3, 2);
  common::Rng rng(3);
  layer.init_params(rng);
  tensor::Tensor big({8, 3});
  tensor::Tensor small({2, 3});
  EXPECT_EQ(layer.forward(big).dim(0), 8u);
  EXPECT_EQ(layer.forward(small).dim(0), 2u);
}

TEST(ReLULayer, ZeroesNegativeAndRoutesGradient) {
  ReLU layer;
  tensor::Tensor x({1, 4}, {-2, -0.5, 0.5, 2});
  const auto& y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 2.0f);
  tensor::Tensor g({1, 4}, {1, 1, 1, 1});
  const auto& gin = layer.backward(g);
  EXPECT_FLOAT_EQ(gin[0], 0.0f);
  EXPECT_FLOAT_EQ(gin[2], 1.0f);
}

TEST(FlattenLayer, RoundTripsShape) {
  Flatten layer;
  tensor::Tensor x({2, 3, 2, 2});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const auto& y = layer.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{2, 12}));
  EXPECT_FLOAT_EQ(y.at2(1, 0), 12.0f);
  tensor::Tensor g({2, 12});
  g.fill(1.0f);
  const auto& gin = layer.backward(g);
  EXPECT_EQ(gin.shape(), x.shape());
}

TEST(MaxPoolLayer, ForwardBackwardShapes) {
  MaxPool2x2 layer;
  tensor::Tensor x({2, 3, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i % 7);
  const auto& y = layer.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{2, 3, 2, 2}));
  tensor::Tensor g(y.shape());
  g.fill(1.0f);
  const auto& gin = layer.backward(g);
  EXPECT_EQ(gin.shape(), x.shape());
  double total = 0.0;
  for (std::size_t i = 0; i < gin.numel(); ++i) total += gin[i];
  EXPECT_NEAR(total, static_cast<double>(y.numel()), 1e-5);
}

TEST(Conv2DLayer, ForwardShape) {
  Conv2D layer(3, 8, 3, 1);
  common::Rng rng(4);
  layer.init_params(rng);
  tensor::Tensor x({2, 3, 6, 6});
  const auto& y = layer.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 8, 6, 6}));
}

TEST(Conv2DLayer, WrongChannelCountThrows) {
  Conv2D layer(3, 8, 3, 1);
  tensor::Tensor x({2, 4, 6, 6});
  EXPECT_THROW(layer.forward(x), std::invalid_argument);
}

TEST(Conv2DLayer, ParamCount) {
  Conv2D layer(2, 4, 3, 1);
  const auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].value->numel(), 4u * 2u * 3u * 3u);
  EXPECT_EQ(params[1].value->numel(), 4u);
}

}  // namespace
}  // namespace mach::nn
