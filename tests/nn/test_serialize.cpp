// nn/serialize coverage: parameter round-trips, the unified errno-carrying
// error reporting of save and load, corruption/truncation handling, and
// optimizer-state (SGD velocities / Adam moments) round-trips.
#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/sgd.h"

namespace mach::nn {
namespace {

Sequential make_model() {
  Sequential model;
  model.add(std::make_unique<Dense>(4, 3));
  common::Rng rng(11);
  model.init_params(rng);
  return model;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Cuts the file at `path` down to its first `bytes` bytes.
void truncate_file(const std::string& path, std::size_t bytes) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> head(bytes);
  in.read(head.data(), static_cast<std::streamsize>(bytes));
  ASSERT_TRUE(in) << "file shorter than requested truncation";
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(head.data(), static_cast<std::streamsize>(bytes));
}

TEST(SerializeErrors, SaveToUnwritablePathThrowsWithErrnoContext) {
  Sequential model = make_model();
  try {
    save_parameters(model, "/no/such/dir/weights.mach");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("save_parameters"), std::string::npos) << message;
    EXPECT_NE(message.find("/no/such/dir/weights.mach"), std::string::npos);
    // The strerror context is the point of the unified reporting.
    EXPECT_NE(message.find('('), std::string::npos) << message;
  }
}

TEST(SerializeErrors, LoadFromMissingPathThrowsWithErrnoContext) {
  Sequential model = make_model();
  try {
    load_parameters(model, "/no/such/weights.mach");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("load_parameters"), std::string::npos) << message;
    EXPECT_NE(message.find("/no/such/weights.mach"), std::string::npos);
    EXPECT_NE(message.find('('), std::string::npos) << message;
  }
}

TEST(SerializeErrors, TruncatedHeaderThrows) {
  Sequential model = make_model();
  const std::string path = temp_path("trunc_header.mach");
  save_parameters(model, path);
  truncate_file(path, 6);  // inside the magic/version preamble
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeErrors, TruncatedPayloadThrows) {
  Sequential model = make_model();
  const std::string path = temp_path("trunc_payload.mach");
  save_parameters(model, path);
  // Keep the full preamble (magic + version + count = 16 bytes) and half of
  // the float payload.
  const std::size_t payload = model.num_parameters() * sizeof(float);
  truncate_file(path, 16 + payload / 2);
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeErrors, CorruptMagicMentionsPath) {
  const std::string path = temp_path("bad_magic.mach");
  {
    std::ofstream out(path, std::ios::binary);
    const std::vector<char> junk(64, '\x5a');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  Sequential model = make_model();
  try {
    load_parameters(model, path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(OptimizerState, SgdVelocityRoundTrip) {
  Sequential model = make_model();
  Sgd sgd({.learning_rate = 0.05, .momentum = 0.9, .weight_decay = 0.0});
  // A couple of momentum steps populate the velocity buffers.
  for (int i = 0; i < 3; ++i) {
    for (auto& param : model.params()) {
      const auto grads = param.grad->flat();
      for (std::size_t j = 0; j < grads.size(); ++j) {
        grads[j] = 0.01f * static_cast<float>(j + 1);
      }
    }
    sgd.step(model);
  }
  ASSERT_FALSE(sgd.velocities().empty());
  const auto original = sgd.velocities();

  const std::string path = temp_path("sgd_state.mopt");
  save_optimizer_state(sgd, path);
  Sgd restored({.learning_rate = 0.05, .momentum = 0.9, .weight_decay = 0.0});
  load_optimizer_state(restored, path);
  EXPECT_EQ(restored.velocities(), original);
  std::remove(path.c_str());
}

TEST(OptimizerState, AdamMomentRoundTrip) {
  Sequential model = make_model();
  Adam adam({.learning_rate = 0.01});
  for (int i = 0; i < 5; ++i) {
    for (auto& param : model.params()) {
      const auto grads = param.grad->flat();
      for (std::size_t j = 0; j < grads.size(); ++j) {
        grads[j] = 0.02f * static_cast<float>(j + 1);
      }
    }
    adam.step(model);
  }
  ASSERT_EQ(adam.steps_taken(), 5u);

  const std::string path = temp_path("adam_state.mopt");
  save_optimizer_state(adam, path);
  Adam restored({.learning_rate = 0.01});
  load_optimizer_state(restored, path);
  EXPECT_EQ(restored.steps_taken(), 5u);
  EXPECT_EQ(restored.first_moments(), adam.first_moments());
  EXPECT_EQ(restored.second_moments(), adam.second_moments());
  std::remove(path.c_str());
}

TEST(OptimizerState, KindMismatchThrows) {
  Sgd sgd({.learning_rate = 0.1, .momentum = 0.9, .weight_decay = 0.0});
  const std::string path = temp_path("kind_mismatch.mopt");
  save_optimizer_state(sgd, path);
  Adam adam({.learning_rate = 0.01});
  EXPECT_THROW(load_optimizer_state(adam, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OptimizerState, TruncatedMomentBufferThrows) {
  Sequential model = make_model();
  Adam adam({.learning_rate = 0.01});
  for (auto& param : model.params()) {
    for (float& g : param.grad->flat()) g = 0.1f;
  }
  adam.step(model);
  const std::string path = temp_path("trunc_state.mopt");
  save_optimizer_state(adam, path);
  std::uintmax_t size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    size = static_cast<std::uintmax_t>(in.tellg());
  }
  truncate_file(path, static_cast<std::size_t>(size) - 7);
  Adam restored({.learning_rate = 0.01});
  EXPECT_THROW(load_optimizer_state(restored, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mach::nn
