// Numerical gradient verification of the full backprop pipeline: for every
// parameter tensor of a small model, the analytic gradient from
// forward_backward must match a central finite difference of the loss.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/factory.h"
#include "nn/model.h"

namespace mach::nn {
namespace {

struct GradCheckCase {
  std::string name;
  std::function<Sequential()> build;
  std::vector<std::size_t> input_shape;
};

class GradCheck : public ::testing::TestWithParam<GradCheckCase> {};

double loss_of(Sequential& model, const tensor::Tensor& x,
               const std::vector<int>& labels) {
  return model.evaluate(x, labels).loss;
}

TEST_P(GradCheck, AnalyticMatchesNumeric) {
  const auto& param = GetParam();
  Sequential model = param.build();
  common::Rng rng(99);
  model.init_params(rng);

  tensor::Tensor x(param.input_shape);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<int> labels(param.input_shape[0]);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(3));

  model.forward_backward(x, labels);
  const std::vector<float> analytic = model.get_gradients();

  // Central differences over a subsample of parameters (float32 precision
  // limits the step to ~1e-2; tolerances are therefore loose but effective
  // at catching sign/indexing errors).
  auto params = model.params();
  const float eps = 1e-2f;
  std::size_t offset = 0;
  std::size_t checked = 0;
  for (auto& ref : params) {
    auto values = ref.value->flat();
    const std::size_t stride = std::max<std::size_t>(values.size() / 5, 1);
    for (std::size_t j = 0; j < values.size(); j += stride) {
      const float original = values[j];
      values[j] = original + eps;
      const double plus = loss_of(model, x, labels);
      values[j] = original - eps;
      const double minus = loss_of(model, x, labels);
      values[j] = original;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double a = analytic[offset + j];
      const double scale = std::max({std::abs(a), std::abs(numeric), 0.05});
      EXPECT_LT(std::abs(a - numeric) / scale, 0.15)
          << param.name << " param " << ref.name << " index " << j
          << " analytic=" << a << " numeric=" << numeric;
      ++checked;
    }
    offset += values.size();
  }
  EXPECT_GT(checked, 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Models, GradCheck,
    ::testing::Values(
        GradCheckCase{"dense",
                      [] {
                        Sequential m;
                        m.add(std::make_unique<Dense>(6, 3));
                        return m;
                      },
                      {4, 6}},
        GradCheckCase{"mlp",
                      [] {
                        Sequential m;
                        m.add(std::make_unique<Dense>(6, 5))
                            .add(std::make_unique<ReLU>())
                            .add(std::make_unique<Dense>(5, 3));
                        return m;
                      },
                      {4, 6}},
        GradCheckCase{"conv_net",
                      [] {
                        Sequential m;
                        m.add(std::make_unique<Conv2D>(1, 2, 3, 1))
                            .add(std::make_unique<ReLU>())
                            .add(std::make_unique<MaxPool2x2>())
                            .add(std::make_unique<Flatten>())
                            .add(std::make_unique<Dense>(2 * 2 * 2, 3));
                        return m;
                      },
                      {2, 1, 4, 4}},
        GradCheckCase{"flatten_mlp",
                      [] {
                        Sequential m;
                        m.add(std::make_unique<Flatten>())
                            .add(std::make_unique<Dense>(8, 4))
                            .add(std::make_unique<ReLU>())
                            .add(std::make_unique<Dense>(4, 3));
                        return m;
                      },
                      {3, 2, 2, 2}}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) {
      return info.param.name;
    });

TEST(GradCheckPaperModels, Cnn2BackpropRuns) {
  Sequential model = make_cnn2(1, 12, 12, 10);
  common::Rng rng(5);
  model.init_params(rng);
  tensor::Tensor x({2, 1, 12, 12});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> labels = {3, 7};
  const StepStats stats = model.forward_backward(x, labels);
  EXPECT_GT(stats.loss, 0.0);
  EXPECT_GT(stats.grad_squared_norm, 0.0);
  EXPECT_TRUE(std::isfinite(stats.grad_squared_norm));
}

TEST(GradCheckPaperModels, Cnn3BackpropRuns) {
  Sequential model = make_cnn3(3, 16, 16, 10);
  common::Rng rng(6);
  model.init_params(rng);
  tensor::Tensor x({2, 3, 16, 16});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> labels = {0, 9};
  const StepStats stats = model.forward_backward(x, labels);
  EXPECT_GT(stats.loss, 0.0);
  EXPECT_TRUE(std::isfinite(stats.grad_squared_norm));
}

}  // namespace
}  // namespace mach::nn
