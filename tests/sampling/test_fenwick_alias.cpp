// Property tests for the sublinear sampling structures: the Fenwick tree
// must agree with the naive O(M) cumulative pass draw-for-draw, and the
// alias table's implied pmf must equal the normalised weights, across
// randomised weight-update sequences including the zero-weight and
// all-equal-weight edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sampling/alias.h"
#include "sampling/fenwick.h"

namespace mach::sampling {
namespace {

/// The naive O(M) renormalisation pass the Fenwick path replaces: one
/// cumulative left-to-right scan, returning the first index whose inclusive
/// prefix exceeds the target (zero-weight slots are unreachable).
std::size_t naive_find(const std::vector<double>& weights, double target) {
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += std::max(weights[i], 0.0);
    if (target < cumulative) return i;
  }
  return weights.size();
}

double naive_total(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) total += std::max(w, 0.0);
  return total;
}

/// Naive without-replacement batch: same draw-zero-restore contract as
/// FenwickTree::sample_without_replacement, on a plain vector.
std::vector<std::uint32_t> naive_sample_without_replacement(
    std::vector<double> weights, std::size_t k, common::Rng& rng) {
  std::vector<std::uint32_t> out;
  for (std::size_t d = 0; d < k; ++d) {
    const double total = naive_total(weights);
    if (total <= 0.0) break;
    const std::size_t i = naive_find(weights, rng.uniform() * total);
    if (i >= weights.size()) break;
    out.push_back(static_cast<std::uint32_t>(i));
    weights[i] = 0.0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fenwick tree.
// ---------------------------------------------------------------------------

TEST(Fenwick, PrefixSumsMatchNaive) {
  common::Rng rng(11);
  std::vector<double> weights(37);
  for (auto& w : weights) w = rng.uniform() * 10.0;
  FenwickTree tree{std::span<const double>(weights)};
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= weights.size(); ++i) {
    EXPECT_NEAR(tree.prefix_sum(i), cumulative, 1e-9) << "prefix " << i;
    if (i < weights.size()) cumulative += weights[i];
  }
}

TEST(Fenwick, IntegerWeightsDrawIdenticalToNaiveExhaustively) {
  // Integer-valued weights make every partial sum exact, so grouped (tree)
  // and sequential (naive) accumulation are provably identical — the draw
  // match holds for *every* target, not just almost surely.
  const std::vector<double> weights = {3.0, 0.0, 1.0, 7.0, 0.0, 2.0, 5.0};
  const FenwickTree tree{std::span<const double>(weights)};
  const double total = naive_total(weights);
  EXPECT_DOUBLE_EQ(tree.total(), total);
  for (double target = 0.0; target < total; target += 0.25) {
    EXPECT_EQ(tree.find(target), naive_find(weights, target)) << target;
  }
  // Boundary targets land on the *next* nonzero slot in both paths.
  EXPECT_EQ(tree.find(0.0), 0u);
  EXPECT_EQ(tree.find(3.0), 2u);  // slot 1 has weight 0: unreachable
  EXPECT_EQ(tree.find(total - 1e-9), 6u);
}

TEST(Fenwick, ZeroWeightSlotsAreNeverDrawn) {
  std::vector<double> weights(64, 0.0);
  weights[7] = 1.0;
  weights[41] = 2.0;
  FenwickTree tree{std::span<const double>(weights)};
  common::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t drawn = tree.draw(rng);
    EXPECT_TRUE(drawn == 7 || drawn == 41) << drawn;
  }
}

TEST(Fenwick, AllZeroTreeReturnsSize) {
  FenwickTree tree(16);
  common::Rng rng(5);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  EXPECT_EQ(tree.draw(rng), tree.size());
  std::vector<std::uint32_t> out;
  tree.sample_without_replacement(4, rng, out);
  EXPECT_TRUE(out.empty());
}

TEST(Fenwick, RandomisedUpdateSequencesMatchNaiveDrawForDraw) {
  // The satellite property: across random interleavings of point updates
  // and draws, the Fenwick path and the naive O(M) pass — fed the *same*
  // RNG stream — select identical indices.
  for (std::uint64_t seed : {1u, 7u, 23u, 99u}) {
    common::Rng update_rng(seed);
    const std::size_t n = 200;
    std::vector<double> weights(n, 0.0);
    // Integer-valued weights: exact arithmetic, so the match is guaranteed
    // rather than almost-sure (see the float variant below).
    for (auto& w : weights)
      w = static_cast<double>(update_rng.uniform_index(10));
    FenwickTree tree{std::span<const double>(weights)};

    for (int op = 0; op < 3000; ++op) {
      if (update_rng.uniform() < 0.5) {
        const std::size_t i = update_rng.uniform_index(n);
        const double w = static_cast<double>(update_rng.uniform_index(12));
        weights[i] = w;
        tree.set(i, w);
      } else {
        const double u = update_rng.uniform();
        // Feed both paths the identical cumulative target.
        const std::size_t from_tree = tree.find(u * tree.total());
        const std::size_t from_naive = naive_find(weights, u * tree.total());
        ASSERT_EQ(from_tree, from_naive) << "op " << op << " seed " << seed;
      }
    }
  }
}

TEST(Fenwick, FloatWeightsMatchNaiveOnFixedSeeds) {
  // With arbitrary doubles the grouped and sequential partial sums can
  // differ by ulps, so a target falling inside that gap could disagree —
  // probability ~1e-16 per draw. Fixed seeds make this deterministic: the
  // suite locks in seeds verified to agree, guarding the implementation
  // against order-of-summation regressions.
  for (std::uint64_t seed : {2u, 13u, 77u}) {
    common::Rng rng(seed);
    const std::size_t n = 500;
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.uniform() * 5.0;
    FenwickTree tree{std::span<const double>(weights)};
    for (int i = 0; i < 5000; ++i) {
      const double target = rng.uniform() * tree.total();
      ASSERT_EQ(tree.find(target), naive_find(weights, target))
          << "seed " << seed << " draw " << i;
    }
  }
}

TEST(Fenwick, WithoutReplacementMatchesNaiveSampledSets) {
  for (std::uint64_t seed : {4u, 19u, 55u}) {
    common::Rng setup(seed);
    const std::size_t n = 128;
    std::vector<double> weights(n);
    for (auto& w : weights)
      w = static_cast<double>(setup.uniform_index(20));  // incl. zeros
    FenwickTree tree{std::span<const double>(weights)};

    common::Rng tree_rng(seed * 31);
    common::Rng naive_rng(seed * 31);
    std::vector<std::uint32_t> from_tree;
    tree.sample_without_replacement(16, tree_rng, from_tree);
    const auto from_naive =
        naive_sample_without_replacement(weights, 16, naive_rng);
    EXPECT_EQ(from_tree, from_naive) << "seed " << seed;

    // Restoration is bitwise: a second identical batch from a fresh copy of
    // the RNG reproduces the first (the tree carries no residue).
    common::Rng again_rng(seed * 31);
    std::vector<std::uint32_t> again;
    tree.sample_without_replacement(16, again_rng, again);
    EXPECT_EQ(again, from_tree);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(tree.get(i), std::max(weights[i], 0.0));
    }
  }
}

TEST(Fenwick, AllEqualWeightsDrawUniformly) {
  const std::size_t n = 50;
  std::vector<double> weights(n, 3.0);
  FenwickTree tree{std::span<const double>(weights)};
  common::Rng rng(8);
  std::vector<int> counts(n, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[tree.draw(rng)];
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], draws / static_cast<int>(n), draws / 100)
        << "slot " << i;
  }
}

TEST(Fenwick, ResizeGrowsWithZeroWeights) {
  FenwickTree tree(std::span<const double>(std::vector<double>{1.0, 2.0}));
  tree.resize(8);
  EXPECT_EQ(tree.size(), 8u);
  EXPECT_DOUBLE_EQ(tree.total(), 3.0);
  tree.set(7, 4.0);
  EXPECT_DOUBLE_EQ(tree.total(), 7.0);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(7), 3.0);
}

// ---------------------------------------------------------------------------
// Alias table.
// ---------------------------------------------------------------------------

TEST(Alias, ImpliedPmfIsExactOnDyadicWeights) {
  // Dyadic weights with a power-of-two total keep every Vose intermediate
  // exactly representable, so the implied pmf equals w/total bitwise.
  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0};
  AliasTable table{std::span<const double>(weights)};
  ASSERT_EQ(table.size(), 4u);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(table.implied_probability(i), weights[i] / 8.0) << i;
  }
}

TEST(Alias, ImpliedPmfMatchesWeightsOnRandomInputs) {
  for (std::uint64_t seed : {3u, 21u, 64u}) {
    common::Rng rng(seed);
    std::vector<double> weights(97);
    for (auto& w : weights) w = rng.uniform() * 10.0;
    AliasTable table{std::span<const double>(weights)};
    double total = 0.0;
    for (const double w : weights) total += w;
    double pmf_sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double implied = table.implied_probability(i);
      EXPECT_NEAR(implied, weights[i] / total, 1e-12) << i;
      pmf_sum += implied;
    }
    EXPECT_NEAR(pmf_sum, 1.0, 1e-9);
  }
}

TEST(Alias, ZeroWeightIndicesAreNeverDrawn) {
  std::vector<double> weights(32, 0.0);
  weights[5] = 1.0;
  weights[20] = 3.0;
  AliasTable table{std::span<const double>(weights)};
  common::Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t drawn = table.draw(rng);
    EXPECT_TRUE(drawn == 5 || drawn == 20) << drawn;
  }
  EXPECT_DOUBLE_EQ(table.implied_probability(0), 0.0);
}

TEST(Alias, AllEqualWeightsAreExactlyUniform) {
  const std::size_t n = 16;
  std::vector<double> weights(n, 2.5);
  AliasTable table{std::span<const double>(weights)};
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(table.implied_probability(i), 1.0 / n) << i;
  }
}

TEST(Alias, SameRngStreamYieldsIdenticalDrawSequences) {
  // Determinism half of the satellite property: two tables built from the
  // same weights, fed the same RNG stream, emit identical sampled sets.
  common::Rng setup(12);
  std::vector<double> weights(64);
  for (auto& w : weights) w = setup.uniform();
  AliasTable a{std::span<const double>(weights)};
  AliasTable b{std::span<const double>(weights)};
  common::Rng rng_a(777);
  common::Rng rng_b(777);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.draw(rng_a), b.draw(rng_b)) << i;
  }
}

TEST(Alias, EmptyAndAllZeroTablesAreEmpty) {
  AliasTable empty{std::span<const double>()};
  EXPECT_TRUE(empty.empty());
  std::vector<double> zeros(8, 0.0);
  AliasTable zero_table{std::span<const double>(zeros)};
  EXPECT_TRUE(zero_table.empty());
  EXPECT_DOUBLE_EQ(zero_table.total(), 0.0);
}

TEST(Alias, LongRunFrequenciesTrackWeights) {
  common::Rng setup(31);
  std::vector<double> weights(20);
  for (auto& w : weights) w = 0.5 + setup.uniform() * 4.0;
  double total = 0.0;
  for (const double w : weights) total += w;
  AliasTable table{std::span<const double>(weights)};
  common::Rng rng(32);
  std::vector<int> counts(weights.size(), 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[table.draw(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = draws * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected)) << i;
  }
}

}  // namespace
}  // namespace mach::sampling
