#include "sampling/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sampling/budget.h"

namespace mach::sampling {
namespace {

hfl::FederationInfo make_info(std::vector<std::vector<std::size_t>> histograms) {
  hfl::FederationInfo info;
  info.num_devices = histograms.size();
  info.num_edges = 1;
  info.num_classes = histograms.empty() ? 0 : histograms.front().size();
  info.class_histograms = std::move(histograms);
  return info;
}

hfl::EdgeSamplingContext make_ctx(const std::vector<std::uint32_t>& devices,
                                  double capacity, std::size_t t = 0) {
  hfl::EdgeSamplingContext ctx;
  ctx.t = t;
  ctx.edge = 0;
  ctx.capacity = capacity;
  ctx.devices = devices;
  return ctx;
}

TEST(UniformSampler, EqualProbabilitiesMatchingBudget) {
  UniformSampler sampler;
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 2.0));
  ASSERT_EQ(q.size(), 4u);
  for (double p : q) EXPECT_NEAR(p, 0.5, 1e-12);
}

TEST(UniformSampler, CapacityAboveSizeSaturates) {
  UniformSampler sampler;
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 5.0));
  for (double p : q) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(ClassBalanceSampler, RareClassHolderWeighsMore) {
  // Class 0 is abundant (held by devices 0,1,2), class 1 is rare (device 3).
  ClassBalanceSampler sampler;
  sampler.bind(make_info({{90, 0}, {90, 0}, {90, 0}, {0, 10}}));
  EXPECT_GT(sampler.device_weight(3), sampler.device_weight(0) * 2);
  const std::vector<std::uint32_t> devices = {0, 3};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_GT(q[1], q[0]);
  EXPECT_NEAR(q[0] + q[1], 1.0, 1e-9);
}

TEST(ClassBalanceSampler, BalancedDevicesEqualWeights) {
  ClassBalanceSampler sampler;
  sampler.bind(make_info({{10, 10}, {10, 10}, {10, 10}}));
  EXPECT_NEAR(sampler.device_weight(0), sampler.device_weight(2), 1e-9);
  const std::vector<std::uint32_t> devices = {0, 1, 2};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.5));
  for (double p : q) EXPECT_NEAR(p, 0.5, 1e-9);
}

TEST(ClassBalanceSampler, UnboundFallsBackToUniform) {
  ClassBalanceSampler sampler;  // bind() never called
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_NEAR(q[0], 0.5, 1e-12);
  EXPECT_NEAR(q[1], 0.5, 1e-12);
}

TEST(StatisticalSampler, HigherLossHigherProbability) {
  StatisticalSampler sampler;
  sampler.bind(make_info({{1, 0}, {1, 0}}));
  hfl::TrainingObservation low;
  low.device = 0;
  low.mean_loss = 0.1;
  hfl::TrainingObservation high;
  high.device = 1;
  high.mean_loss = 2.0;
  sampler.observe_training(low);
  sampler.observe_training(high);
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_GT(q[1], q[0] * 3);
}

TEST(StatisticalSampler, UnobservedDevicesShareRunningMean) {
  StatisticalSampler sampler;
  sampler.bind(make_info({{1, 0}, {1, 0}, {1, 0}}));
  hfl::TrainingObservation obs;
  obs.device = 0;
  obs.mean_loss = 1.5;
  sampler.observe_training(obs);
  EXPECT_DOUBLE_EQ(sampler.loss_estimate(1), 1.5);
  EXPECT_DOUBLE_EQ(sampler.loss_estimate(2), 1.5);
}

TEST(StatisticalSampler, EmaSmoothsUpdates) {
  StatisticalSampler sampler(0.5);
  sampler.bind(make_info({{1, 0}}));
  hfl::TrainingObservation obs;
  obs.device = 0;
  obs.mean_loss = 2.0;
  sampler.observe_training(obs);
  EXPECT_DOUBLE_EQ(sampler.loss_estimate(0), 2.0);  // first sets directly
  obs.mean_loss = 0.0;
  sampler.observe_training(obs);
  EXPECT_DOUBLE_EQ(sampler.loss_estimate(0), 1.0);  // 0.5*0 + 0.5*2
}

TEST(StatisticalSampler, NoObservationsGivesUniform) {
  StatisticalSampler sampler;
  sampler.bind(make_info({{1, 0}, {1, 0}}));
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_NEAR(q[0], 0.5, 1e-9);
  EXPECT_NEAR(q[1], 0.5, 1e-9);
}

TEST(ClipWeightSpread, CapsRatioAtMax) {
  std::vector<double> weights = {10.0, 1.0, 0.5, 5.0};
  clip_weight_spread(weights, 4.0);
  EXPECT_DOUBLE_EQ(weights[0], 10.0);
  EXPECT_DOUBLE_EQ(weights[1], 2.5);  // floored at max/ratio
  EXPECT_DOUBLE_EQ(weights[2], 2.5);
  EXPECT_DOUBLE_EQ(weights[3], 5.0);
}

TEST(ClipWeightSpread, RatioOneOrLessDisables) {
  std::vector<double> weights = {10.0, 1.0};
  auto copy = weights;
  clip_weight_spread(weights, 1.0);
  EXPECT_EQ(weights, copy);
  clip_weight_spread(weights, 0.0);
  EXPECT_EQ(weights, copy);
}

TEST(ClipWeightSpread, AllZeroUntouched) {
  std::vector<double> weights = {0.0, 0.0};
  clip_weight_spread(weights, 3.0);
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_DOUBLE_EQ(weights[1], 0.0);
}

TEST(ClipWeightSpread, BoundsProbabilitySpreadUnderBudget) {
  // End-to-end: after clipping at ratio r, the resulting probabilities can
  // differ by at most a factor r (when no per-device cap binds).
  std::vector<double> weights = {100.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  clip_weight_spread(weights, 3.5);
  const auto q = budgeted_probabilities(weights, 2.0);
  double lo = 1.0, hi = 0.0;
  for (double p : q) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LE(hi / lo, 3.5 + 1e-9);
}

TEST(FullParticipationSampler, AllOnes) {
  FullParticipationSampler sampler;
  const std::vector<std::uint32_t> devices = {0, 1, 2};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  for (double p : q) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(Samplers, BudgetRespectedAcrossAll) {
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3, 4};
  const double capacity = 2.5;
  UniformSampler us;
  ClassBalanceSampler cs;
  cs.bind(make_info({{5, 1}, {1, 5}, {3, 3}, {0, 6}, {6, 0}}));
  StatisticalSampler ss;
  ss.bind(make_info({{5, 1}, {1, 5}, {3, 3}, {0, 6}, {6, 0}}));
  for (hfl::Sampler* sampler : {static_cast<hfl::Sampler*>(&us),
                                static_cast<hfl::Sampler*>(&cs),
                                static_cast<hfl::Sampler*>(&ss)}) {
    const auto q = sampler->edge_probabilities(make_ctx(devices, capacity));
    const double total = std::accumulate(q.begin(), q.end(), 0.0);
    EXPECT_NEAR(total, capacity, 1e-9) << sampler->name();
    for (double p : q) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

}  // namespace
}  // namespace mach::sampling
