#include "sampling/budget.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace mach::sampling {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Budget, EmptyInput) {
  EXPECT_TRUE(budgeted_probabilities({}, 3.0).empty());
}

TEST(Budget, ProportionalWhenNoCapBinds) {
  const std::vector<double> w = {1.0, 2.0, 3.0};
  const auto q = budgeted_probabilities(w, 1.5);
  EXPECT_NEAR(q[0], 0.25, 1e-12);
  EXPECT_NEAR(q[1], 0.5, 1e-12);
  EXPECT_NEAR(q[2], 0.75, 1e-12);
  EXPECT_NEAR(sum(q), 1.5, 1e-12);
}

TEST(Budget, CapsAtOneAndRedistributes) {
  // Proportional split of budget 2 would give {1.5, 0.25, 0.25}; the excess
  // 0.5 must flow to the small devices.
  const std::vector<double> w = {6.0, 1.0, 1.0};
  const auto q = budgeted_probabilities(w, 2.0);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_NEAR(q[1], 0.5, 1e-12);
  EXPECT_NEAR(q[2], 0.5, 1e-12);
  EXPECT_NEAR(sum(q), 2.0, 1e-12);
}

TEST(Budget, CascadingPins) {
  // After pinning the first, the second exceeds 1 too.
  const std::vector<double> w = {100.0, 10.0, 1.0, 1.0};
  const auto q = budgeted_probabilities(w, 3.0);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 1.0);
  EXPECT_NEAR(q[2], 0.5, 1e-12);
  EXPECT_NEAR(q[3], 0.5, 1e-12);
}

TEST(Budget, CapacityAboveCountGivesAllOnes) {
  const std::vector<double> w = {1.0, 5.0};
  const auto q = budgeted_probabilities(w, 10.0);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 1.0);
}

TEST(Budget, ZeroCapacityGivesZeros) {
  const std::vector<double> w = {1.0, 1.0};
  const auto q = budgeted_probabilities(w, 0.0);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_DOUBLE_EQ(q[1], 0.0);
}

TEST(Budget, NegativeCapacityClamped) {
  const std::vector<double> w = {1.0};
  const auto q = budgeted_probabilities(w, -5.0);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
}

TEST(Budget, AllZeroWeightsSplitUniformly) {
  const std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  const auto q = budgeted_probabilities(w, 2.0);
  for (double p : q) EXPECT_NEAR(p, 0.5, 1e-12);
}

TEST(Budget, NegativeWeightsTreatedAsZero) {
  const std::vector<double> w = {-3.0, 1.0};
  const auto q = budgeted_probabilities(w, 1.0);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_DOUBLE_EQ(q[1], 1.0);
}

TEST(Budget, MixedZeroAndPositive) {
  const std::vector<double> w = {0.0, 2.0, 0.0, 2.0};
  const auto q = budgeted_probabilities(w, 1.0);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_NEAR(q[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(q[2], 0.0);
  EXPECT_NEAR(q[3], 0.5, 1e-12);
}

class BudgetProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, std::uint64_t>> {
};

TEST_P(BudgetProperty, InvariantsHoldForRandomWeights) {
  const auto [n, capacity, seed] = GetParam();
  common::Rng rng(seed);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.uniform() < 0.1 ? 0.0 : rng.exponential(1.0);
  const auto q = budgeted_probabilities(w, capacity);
  ASSERT_EQ(q.size(), n);
  for (double p : q) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
  // Eq. (3): expected participation equals min(capacity, n) exactly — the
  // water-filling never wastes budget.
  EXPECT_NEAR(sum(q), std::min(capacity, static_cast<double>(n)), 1e-9);
  // Monotone: a strictly larger weight never gets a smaller probability.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (w[i] > w[j]) {
        EXPECT_GE(q[i], q[j] - 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgetProperty,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{10}, std::size_t{40}),
                       ::testing::Values(0.5, 2.0, 5.0, 20.0),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

}  // namespace
}  // namespace mach::sampling
