// Unit tests for the cross-paper zoo samplers (sampling/zoo.h): cluster
// assignment, EMD scoring against hand-computed distances, and the churn /
// staleness priority shaping. The shared conformance obligations (budget,
// HT unbiasedness, determinism, checkpoint round-trip) live in
// test_conformance.cpp — these tests pin the algorithm-specific behaviour.
#include "sampling/zoo.h"

#include <gtest/gtest.h>

#include <numeric>

#include "ckpt/bytes.h"
#include "sampling/budget.h"

namespace mach::sampling {
namespace {

hfl::FederationInfo make_info(std::vector<std::vector<std::size_t>> histograms) {
  hfl::FederationInfo info;
  info.num_devices = histograms.size();
  info.num_edges = 2;
  info.num_classes = histograms.empty() ? 0 : histograms.front().size();
  info.class_histograms = std::move(histograms);
  return info;
}

hfl::EdgeSamplingContext make_ctx(const std::vector<std::uint32_t>& devices,
                                  double capacity, std::size_t t = 0,
                                  std::size_t edge = 0) {
  hfl::EdgeSamplingContext ctx;
  ctx.t = t;
  ctx.edge = edge;
  ctx.capacity = capacity;
  ctx.devices = devices;
  return ctx;
}

// ---------------------------------------------------------------------------
// MobilityClusterSampler

TEST(MobilityClusterSampler, GroupsIdenticalDistributions) {
  MobilityClusterSampler sampler;
  // Devices 0,1 hold only class 0; devices 2,3 hold only class 1.
  sampler.bind(make_info({{10, 0}, {10, 0}, {0, 10}, {0, 10}}));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  const auto clusters = sampler.cluster_devices(devices);
  ASSERT_EQ(clusters.size(), 4u);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[2], clusters[3]);
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(MobilityClusterSampler, ScaleInvariantMembership) {
  // Cosine similarity ignores shard size: a device with 10x the examples of
  // another but the same label mix joins the same cluster.
  MobilityClusterSampler sampler;
  sampler.bind(make_info({{5, 5}, {50, 50}, {10, 0}}));
  const std::vector<std::uint32_t> devices = {0, 1, 2};
  const auto clusters = sampler.cluster_devices(devices);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(MobilityClusterSampler, BudgetSplitsEvenlyAcrossClusters) {
  MobilityClusterSampler sampler;
  // Cluster A = {0, 1, 2} (class 0), cluster B = {3} (class 1): the minority
  // cluster's lone member gets the whole of its cluster's half-budget.
  sampler.bind(make_info({{10, 0}, {10, 0}, {10, 0}, {0, 10}}));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  ASSERT_EQ(q.size(), 4u);
  EXPECT_NEAR(q[0], q[1], 1e-12);
  EXPECT_NEAR(q[1], q[2], 1e-12);
  EXPECT_NEAR(q[3], 3.0 * q[0], 1e-9);
  EXPECT_NEAR(std::accumulate(q.begin(), q.end(), 0.0), 1.0, 1e-9);
}

TEST(MobilityClusterSampler, UnboundFallsBackToUniform) {
  MobilityClusterSampler sampler;  // bind() never called
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 2.0));
  for (const double p : q) EXPECT_NEAR(p, 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// EmdGuidedSampler

TEST(EmdGuidedSampler, HandComputedDistances) {
  EmdGuidedSampler sampler;
  // Global marginal: (30+0+15) / 60 = 0.75 class 0, 0.25 class 1.
  sampler.bind(make_info({{30, 0}, {0, 15}, {15, 0}}));
  // Device 0: p = (1, 0).   CDF diff |1 - 0.75| = 0.25, |1 - 1| = 0.
  EXPECT_NEAR(sampler.emd(0), 0.25, 1e-12);
  // Device 1: p = (0, 1).   CDF diff |0 - 0.75| = 0.75.
  EXPECT_NEAR(sampler.emd(1), 0.75, 1e-12);
  EXPECT_NEAR(sampler.emd(2), 0.25, 1e-12);
}

TEST(EmdGuidedSampler, GlobalLikeDeviceUpweighted) {
  EmdGuidedSampler sampler;
  // Device 2 matches the global mix far better than the one-class devices.
  sampler.bind(make_info({{20, 0}, {0, 20}, {10, 10}}));
  const std::vector<std::uint32_t> devices = {0, 1, 2};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_GT(q[2], q[0]);
  EXPECT_GT(q[2], q[1]);
  // Devices 0 and 1 are symmetric around the global marginal.
  EXPECT_NEAR(q[0], q[1], 1e-9);
}

TEST(EmdGuidedSampler, SpreadBoundedByClipRatio) {
  EmdGuidedSampler sampler(/*sharpness=*/4.0, /*max_weight_ratio=*/2.0);
  sampler.bind(make_info({{40, 0}, {0, 40}, {20, 20}, {20, 20}}));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.5));
  double lo = 1.0, hi = 0.0;
  for (const double p : q) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LE(hi / lo, 2.0 + 1e-9);
}

TEST(EmdGuidedSampler, PerfectlyGlobalDeviceStaysFinite) {
  EmdGuidedSampler sampler;
  sampler.bind(make_info({{10, 10}, {10, 10}}));  // both exactly global
  EXPECT_NEAR(sampler.emd(0), 0.0, 1e-12);
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_NEAR(q[0], 0.5, 1e-9);
  EXPECT_NEAR(q[1], 0.5, 1e-9);
}

// ---------------------------------------------------------------------------
// ChurnAwareSampler

TEST(ChurnAwareSampler, NewcomerToEdgeGetsChurnBonus) {
  ChurnAwareSampler sampler;
  sampler.bind(make_info({{5, 5}, {5, 5}}));
  // Step 0: both devices seen at edge 0.
  const std::vector<std::uint32_t> devices = {0, 1};
  sampler.edge_probabilities(make_ctx(devices, 1.0, /*t=*/0, /*edge=*/0));
  // Step 1: device 0 moved to edge 1, device 1 stayed at edge 0.
  const double moved = sampler.priority(0, 1, /*edge=*/1);
  const double stayed = sampler.priority(1, 1, /*edge=*/0);
  EXPECT_NEAR(moved - stayed, ChurnAwareSampler::Options{}.churn_bonus, 1e-12);
}

TEST(ChurnAwareSampler, StalenessGrowsAndSaturates) {
  ChurnAwareSampler sampler;
  sampler.bind(make_info({{5, 5}}));
  hfl::TrainingObservation obs;
  obs.t = 0;
  obs.device = 0;
  obs.edge = 0;
  sampler.observe_training(obs);
  const double fresh = sampler.priority(0, 1, 0);
  const double stale = sampler.priority(0, 20, 0);
  const double very_stale = sampler.priority(0, 200, 0);
  EXPECT_LT(fresh, stale);
  EXPECT_LT(stale, very_stale);
  // The bonus saturates below staleness_weight (never unbounded).
  const ChurnAwareSampler::Options defaults;
  EXPECT_LT(very_stale, 1.0 + defaults.churn_bonus + defaults.staleness_weight);
}

TEST(ChurnAwareSampler, NeverObservedOutranksRecentlyObserved) {
  ChurnAwareSampler sampler;
  sampler.bind(make_info({{5, 5}, {5, 5}}));
  hfl::TrainingObservation obs;
  obs.t = 3;
  obs.device = 0;
  obs.edge = 0;
  sampler.observe_training(obs);
  EXPECT_GT(sampler.priority(1, 4, 0), sampler.priority(0, 4, 0));
}

TEST(ChurnAwareSampler, CorruptSnapshotThrows) {
  ChurnAwareSampler sampler;
  sampler.bind(make_info({{5, 5}, {5, 5}}));
  ckpt::ByteWriter writer;
  sampler.save_state(writer);

  // Version byte flipped.
  {
    auto bytes = writer.data();
    bytes[0] = 0x7F;
    ChurnAwareSampler fresh;
    fresh.bind(make_info({{5, 5}, {5, 5}}));
    ckpt::ByteReader reader(bytes);
    EXPECT_THROW(fresh.load_state(reader), ckpt::CorruptPayload);
  }
  // Snapshot from a differently sized federation.
  {
    ChurnAwareSampler fresh;
    fresh.bind(make_info({{5, 5}}));
    ckpt::ByteReader reader(writer.data());
    EXPECT_THROW(fresh.load_state(reader), ckpt::CorruptPayload);
  }
}

}  // namespace
}  // namespace mach::sampling
