#include "sampling/extended.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mach::sampling {
namespace {

hfl::FederationInfo make_info(std::size_t devices) {
  hfl::FederationInfo info;
  info.num_devices = devices;
  info.num_edges = 1;
  info.num_classes = 2;
  info.class_histograms.assign(devices, {1, 1});
  return info;
}

hfl::EdgeSamplingContext make_ctx(const std::vector<std::uint32_t>& devices,
                                  double capacity, std::size_t t = 0) {
  hfl::EdgeSamplingContext ctx;
  ctx.t = t;
  ctx.capacity = capacity;
  ctx.devices = devices;
  return ctx;
}

hfl::TrainingObservation observation(std::uint32_t device, double loss,
                                     std::size_t t = 0) {
  hfl::TrainingObservation obs;
  obs.device = device;
  obs.mean_loss = loss;
  obs.t = t;
  return obs;
}

TEST(PowerOfChoice, BudgetRespected) {
  PowerOfChoiceSampler sampler;
  sampler.bind(make_info(6));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3, 4, 5};
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = sampler.edge_probabilities(make_ctx(devices, 2.0));
    ASSERT_EQ(q.size(), 6u);
    const double total = std::accumulate(q.begin(), q.end(), 0.0);
    EXPECT_NEAR(total, 2.0, 1e-9);
    for (double p : q) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(PowerOfChoice, ConcentratesOnCandidates) {
  // candidate_fraction 0.5 of 6 devices -> at most ceil(0.5*6) = 3 nonzero
  // entries (but never fewer than ceil(capacity)).
  PowerOfChoiceSampler sampler(0.5);
  sampler.bind(make_info(6));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3, 4, 5};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 2.0));
  std::size_t nonzero = 0;
  for (double p : q) nonzero += p > 0.0 ? 1 : 0;
  EXPECT_LE(nonzero, 3u);
  EXPECT_GE(nonzero, 2u);
}

TEST(PowerOfChoice, PrefersHighLossWithinCandidates) {
  PowerOfChoiceSampler sampler(1.0);  // everyone is a candidate
  sampler.bind(make_info(2));
  sampler.observe_training(observation(0, 0.1));
  sampler.observe_training(observation(1, 3.0));
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_GT(q[1], q[0]);
}

TEST(PowerOfChoice, UnseenDevicesRankAsMaxLoss) {
  PowerOfChoiceSampler sampler(1.0);
  sampler.bind(make_info(2));
  sampler.observe_training(observation(0, 2.0));
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0));
  EXPECT_NEAR(q[0], q[1], 1e-9);  // unseen device 1 competes at max loss
}

TEST(Oort, BudgetAndRange) {
  OortSampler sampler;
  sampler.bind(make_info(5));
  const std::vector<std::uint32_t> devices = {0, 1, 2, 3, 4};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 2.5));
  const double total = std::accumulate(q.begin(), q.end(), 0.0);
  EXPECT_NEAR(total, 2.5, 1e-9);
}

TEST(Oort, UtilityTracksLoss) {
  OortSampler sampler;
  sampler.bind(make_info(2));
  sampler.observe_training(observation(0, 0.2, 5));
  sampler.observe_training(observation(1, 2.0, 5));
  EXPECT_GT(sampler.utility(1, 5), sampler.utility(0, 5));
}

TEST(Oort, UtilityClippedAtMultipleOfMedian) {
  OortSampler::Options options;
  options.clip_multiple = 2.0;
  options.exploration_weight = 0.0;
  OortSampler sampler(options);
  sampler.bind(make_info(3));
  sampler.observe_training(observation(0, 1.0, 0));
  sampler.observe_training(observation(1, 1.0, 0));
  sampler.observe_training(observation(2, 100.0, 0));
  // Median of {1, 1, 100} is 1 -> device 2 clipped to 2.0.
  EXPECT_NEAR(sampler.utility(2, 0), 2.0, 1e-9);
}

TEST(Oort, StalenessBonusGrows) {
  OortSampler sampler;
  sampler.bind(make_info(1));
  sampler.observe_training(observation(0, 1.0, 0));
  const double fresh = sampler.utility(0, 1);
  const double stale = sampler.utility(0, 100);
  EXPECT_GT(stale, fresh);
}

TEST(Oort, HigherProbabilityForHigherUtility) {
  OortSampler sampler;
  sampler.bind(make_info(2));
  sampler.observe_training(observation(0, 0.2, 3));
  sampler.observe_training(observation(1, 2.0, 3));
  const std::vector<std::uint32_t> devices = {0, 1};
  const auto q = sampler.edge_probabilities(make_ctx(devices, 1.0, 3));
  EXPECT_GT(q[1], q[0]);
}

}  // namespace
}  // namespace mach::sampling
