// Sampler conformance suite: every registered sampler (core/registry.h) is
// held to the same four contracts through the shared harness world
// (sampler_harness.h):
//
//   1. probabilities are valid and budget-feasible (sum q <= K_n, Eq. 11/12);
//   2. the q it emits keep the Horvitz-Thompson edge aggregate unbiased, with
//      the inverse-propensity correction, under injected dropouts (the PR 4
//      property, now a per-sampler obligation);
//   3. full runs are bitwise identical at any --threads value;
//   4. save_state/load_state round-trips resume the q stream bit-for-bit.
//
// A sampler added to the registry is automatically instantiated here; there
// is no opt-out list to forget to update.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ckpt/bytes.h"
#include "core/registry.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "sampling/sampler_harness.h"

namespace mach {
namespace {

using test::HarnessWorld;

class SamplerConformance : public ::testing::TestWithParam<std::string> {
 protected:
  hfl::SamplerPtr make_bound() const {
    auto sampler = core::make_sampler(GetParam());
    sampler->bind(HarnessWorld{}.info());
    return sampler;
  }

  const core::SamplerInfo& registry_entry() const {
    for (const core::SamplerInfo& info : core::sampler_registry()) {
      if (GetParam() == info.name) return info;
    }
    throw std::logic_error("unregistered param " + GetParam());
  }

  /// Per-edge Eq. 11/12 contract; false for MACH-G (federation-wide budget)
  /// and the full-participation ablation (no budget at all).
  bool edge_budgeted() const { return registry_entry().edge_budgeted; }
};

TEST_P(SamplerConformance, ProbabilitiesAreValidAndBudgetFeasible) {
  const HarnessWorld world;
  auto sampler = make_bound();
  common::Rng rng(0xC0Fu);
  for (std::size_t t = 0; t < 8; ++t) {
    double step_total = 0.0, step_capacity = 0.0;
    for (std::size_t edge = 0; edge < world.num_edges; ++edge) {
      const auto devices = world.members(t, edge);
      hfl::EdgeSamplingContext ctx;
      ctx.t = t;
      ctx.edge = edge;
      ctx.capacity = world.participation * static_cast<double>(devices.size());
      ctx.devices = devices;
      std::vector<double> oracle;
      if (sampler->needs_oracle()) {
        oracle = world.oracle_norms(devices, t);
        ctx.oracle_grad_sq_norms = oracle;
      }
      const auto q = sampler->edge_probabilities(ctx);
      ASSERT_EQ(q.size(), devices.size())
          << "t=" << t << " edge=" << edge;
      double total = 0.0;
      for (const double p : q) {
        EXPECT_GE(p, 0.0) << "t=" << t << " edge=" << edge;
        EXPECT_LE(p, 1.0) << "t=" << t << " edge=" << edge;
        ASSERT_TRUE(std::isfinite(p));
        total += p;
      }
      if (!devices.empty()) {
        EXPECT_GT(total, 0.0) << "no participation mass at t=" << t;
      }
      step_total += total;
      step_capacity += ctx.capacity;
      if (edge_budgeted()) {
        EXPECT_LE(total, ctx.capacity + 1e-9)
            << "budget exceeded at t=" << t << " edge=" << edge;
      }
      // Feed observations so stateful samplers shape later steps.
      for (std::size_t i = 0; i < devices.size(); ++i) {
        if (!rng.bernoulli(std::clamp(q[i], 0.0, 1.0))) continue;
        hfl::TrainingObservation obs;
        obs.t = t;
        obs.device = devices[i];
        obs.edge = edge;
        obs.local_grad_sq_norms = {0.4, 0.3};
        obs.mean_loss = 1.0;
        sampler->observe_training(obs);
      }
    }
    // Globally-budgeted samplers (MACH-G) must still bound the whole
    // federation's expected participation by the summed edge budgets.
    if (!edge_budgeted() && GetParam() != "full") {
      EXPECT_LE(step_total, step_capacity + 1e-9)
          << "global budget exceeded at t=" << t;
    }
    if (t % world.cloud_interval == 0) sampler->on_cloud_round(t);
  }
}

TEST_P(SamplerConformance, HtEstimateUnbiasedUnderFaults) {
  // Drive the sampler a few steps so experience-driven strategies produce
  // their real (non-uniform) q, then Monte-Carlo the HT edge aggregate with
  // the inverse-propensity fault correction against the exact mean. The
  // engine clamps q into [1e-3, 1] before drawing; the harness mirrors that.
  const HarnessWorld world;
  auto sampler = make_bound();
  common::Rng drive_rng(0x11Du);
  test::drive_steps(*sampler, world, 4, drive_rng);

  const std::size_t t = 4;
  const auto devices = world.members(t, /*edge=*/0);
  hfl::EdgeSamplingContext ctx;
  ctx.t = t;
  ctx.edge = 0;
  ctx.capacity = world.participation * static_cast<double>(devices.size());
  ctx.devices = devices;
  std::vector<double> oracle;
  if (sampler->needs_oracle()) {
    oracle = world.oracle_norms(devices, t);
    ctx.oracle_grad_sq_norms = oracle;
  }
  auto q = sampler->edge_probabilities(ctx);
  ASSERT_EQ(q.size(), devices.size());
  for (double& p : q) p = std::clamp(p, 1e-3, 1.0);

  // Heterogeneous per-device values with a known exact average.
  common::Rng value_rng(0xA7Eu);
  std::vector<double> values(devices.size());
  double exact = 0.0;
  for (double& v : values) {
    v = value_rng.normal(value_rng.uniform(-2.0, 2.0), 1.5);
    exact += v;
  }
  exact /= static_cast<double>(devices.size());

  const fault::FaultSchedule schedule = fault::FaultSchedule::parse(
      "dropout:p=0.3;straggler:p=0.4,delay=1.5,timeout=1,backoff=0.5,"
      "retries=1;seed=41");
  const fault::FaultInjector injector(schedule, 1);

  common::Rng mc_rng(0x5EEDu);
  const std::size_t trials = 20000;
  const double inv_m = 1.0 / static_cast<double>(devices.size());
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    double x_hat = 0.0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (!mc_rng.bernoulli(q[i])) continue;
      const fault::DeviceFaultDecision fate =
          injector.device_fate(trial, 0, devices[i]);
      if (!fate.arrived) continue;
      const double q_effective =
          q[i] * injector.arrival_probability(0, devices[i]);
      x_hat += inv_m * values[i] / q_effective;
    }
    sum += x_hat;
    sum_sq += x_hat * x_hat;
  }
  const double n = static_cast<double>(trials);
  const double mean = sum / n;
  const double variance = (sum_sq - sum * sum / n) / (n - 1.0);
  const double stderr_ = std::sqrt(variance / n);
  EXPECT_NEAR(mean, exact, 4.0 * stderr_)
      << "bias " << mean - exact << " vs stderr " << stderr_;
}

TEST_P(SamplerConformance, RunsBitwiseIdenticalAcrossThreadCounts) {
  // Tiny end-to-end run through the real simulator at 1/2/4 worker threads;
  // the metric stream (accuracies, losses, participant counts) must be
  // bitwise identical — samplers run on the coordinator, so any divergence
  // means order-dependent state leaked into the parallel section.
  hfl::ExperimentConfig config = hfl::ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 16;
  config.test_examples = 60;
  config.mlp_hidden = 8;
  config.hfl.local_epochs = 1;
  config.hfl.participation = 0.6;
  config.horizon = 4;
  config.num_stations = 6;
  config.num_hotspots = 2;
  config = config.with_seed(321);

  std::vector<hfl::MetricsRecorder> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    config.hfl.parallel.threads = threads;
    auto sampler = core::make_sampler(GetParam());
    runs.push_back(hfl::run_experiment(config, *sampler).metrics);
  }
  const auto& reference = runs.front().points();
  ASSERT_FALSE(reference.empty());
  for (std::size_t run = 1; run < runs.size(); ++run) {
    const auto& points = runs[run].points();
    ASSERT_EQ(points.size(), reference.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(points[i].t, reference[i].t);
      EXPECT_EQ(points[i].test_accuracy, reference[i].test_accuracy)
          << "accuracy drift at point " << i << " with threads run " << run;
      EXPECT_EQ(points[i].test_loss, reference[i].test_loss)
          << "loss drift at point " << i << " with threads run " << run;
      EXPECT_EQ(points[i].participants, reference[i].participants)
          << "participant drift at point " << i << " with threads run " << run;
    }
  }
}

TEST_P(SamplerConformance, CheckpointRoundTripResumesBitForBit) {
  // Drive to a midpoint, snapshot, restore into a freshly constructed
  // sampler (bind first, exactly like the engine's resume path), then feed
  // both the identical continuation and demand bitwise-equal q streams.
  const HarnessWorld world;
  auto original = make_bound();
  common::Rng warmup_rng(0xBEEFu);
  test::drive_steps(*original, world, 5, warmup_rng);

  ckpt::ByteWriter writer;
  original->save_state(writer);

  auto restored = make_bound();
  ckpt::ByteReader reader(writer.data());
  restored->load_state(reader);

  common::Rng rng_a(0x99u);
  common::Rng rng_b(0x99u);
  for (std::size_t t = 5; t < 9; ++t) {
    const auto q_original = test::drive_step(*original, world, t, rng_a);
    const auto q_restored = test::drive_step(*restored, world, t, rng_b);
    ASSERT_EQ(q_original.size(), q_restored.size()) << "t=" << t;
    for (std::size_t i = 0; i < q_original.size(); ++i) {
      EXPECT_EQ(q_original[i], q_restored[i])
          << "q diverged at t=" << t << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, SamplerConformance,
    ::testing::ValuesIn(core::registered_samplers()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace mach
