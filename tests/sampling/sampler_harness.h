// Reusable sampler conformance harness: a tiny deterministic federation that
// any hfl::Sampler can be driven through without the full simulator, used by
// test_conformance.cpp to hold every registered sampler to the same
// contract — budget-feasible probabilities, Horvitz-Thompson compatibility
// under faults, thread-count determinism and checkpoint round-trips.
//
// The world is mobility-shaped on purpose: half the devices shuffle to a new
// edge every step (exercising churn/cluster logic), the rest stay put, and
// the label histograms are deterministically Non-IID so distribution-driven
// samplers (class_balance, emd, mobility_cluster) produce non-uniform
// weights worth checking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "hfl/sampler.h"

namespace mach::test {

struct HarnessWorld {
  std::size_t num_devices = 12;
  std::size_t num_edges = 3;
  std::size_t num_classes = 4;
  std::size_t cloud_interval = 2;
  double participation = 0.5;

  /// Non-IID label histograms: every device leans on class d % num_classes
  /// with a deterministic pseudo-random background over the others.
  hfl::FederationInfo info() const {
    hfl::FederationInfo info;
    info.num_devices = num_devices;
    info.num_edges = num_edges;
    info.num_classes = num_classes;
    info.cloud_interval = cloud_interval;
    info.class_histograms.resize(num_devices);
    for (std::size_t d = 0; d < num_devices; ++d) {
      auto& histogram = info.class_histograms[d];
      histogram.resize(num_classes);
      for (std::size_t c = 0; c < num_classes; ++c) {
        histogram[c] = 2 + (d * 7 + c * 3) % 9;
      }
      histogram[d % num_classes] += 40;
    }
    return info;
  }

  /// Edge of device d at step t. Devices in the lower half migrate one edge
  /// per step (high churn); the upper half never moves.
  std::size_t edge_of(std::size_t d, std::size_t t) const {
    if (d < num_devices / 2) return (d + t) % num_edges;
    return d % num_edges;
  }

  /// M_n^t in ascending device order, exactly like the engine's roster.
  std::vector<std::uint32_t> members(std::size_t t, std::size_t edge) const {
    std::vector<std::uint32_t> out;
    for (std::size_t d = 0; d < num_devices; ++d) {
      if (edge_of(d, t) == edge) out.push_back(static_cast<std::uint32_t>(d));
    }
    return out;
  }

  /// Deterministic stand-in for the probed squared gradient norms (MACH-P).
  std::vector<double> oracle_norms(std::span<const std::uint32_t> devices,
                                   std::size_t t) const {
    std::vector<double> norms;
    norms.reserve(devices.size());
    for (const std::uint32_t d : devices) {
      norms.push_back(0.5 + 0.1 * static_cast<double>(d) +
                      0.01 * static_cast<double>(t));
    }
    return norms;
  }
};

/// Drives one full coordinator step: edge_probabilities per edge in index
/// order (the engine's call order), Bernoulli participation draws in device
/// order feeding observe_training, and on_cloud_round at the T_g boundary.
/// Returns the concatenated q vectors of all edges, for bitwise comparison.
inline std::vector<double> drive_step(hfl::Sampler& sampler,
                                      const HarnessWorld& world, std::size_t t,
                                      common::Rng& rng) {
  std::vector<double> all_q;
  for (std::size_t edge = 0; edge < world.num_edges; ++edge) {
    const auto devices = world.members(t, edge);
    hfl::EdgeSamplingContext ctx;
    ctx.t = t;
    ctx.edge = edge;
    ctx.capacity =
        world.participation * static_cast<double>(devices.size());
    ctx.devices = devices;
    std::vector<double> oracle;
    if (sampler.needs_oracle()) {
      oracle = world.oracle_norms(devices, t);
      ctx.oracle_grad_sq_norms = oracle;
    }
    const auto q = sampler.edge_probabilities(ctx);
    for (std::size_t i = 0; i < q.size() && i < devices.size(); ++i) {
      if (!rng.bernoulli(std::clamp(q[i], 0.0, 1.0))) continue;
      hfl::TrainingObservation obs;
      obs.t = t;
      obs.device = devices[i];
      obs.edge = edge;
      const double base = 0.3 + 0.2 * static_cast<double>(devices[i] % 5);
      obs.local_grad_sq_norms = {base, base * 0.9, base * 0.8};
      obs.mean_loss =
          1.0 + 0.1 * static_cast<double>((devices[i] * 13 + t) % 7);
      sampler.observe_training(obs);
    }
    all_q.insert(all_q.end(), q.begin(), q.end());
  }
  if (t % world.cloud_interval == 0) sampler.on_cloud_round(t);
  return all_q;
}

/// drive_step over [0, steps); returns every step's concatenated q.
inline std::vector<std::vector<double>> drive_steps(hfl::Sampler& sampler,
                                                    const HarnessWorld& world,
                                                    std::size_t steps,
                                                    common::Rng& rng) {
  std::vector<std::vector<double>> history;
  history.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    history.push_back(drive_step(sampler, world, t, rng));
  }
  return history;
}

}  // namespace mach::test
