// Crash-safety of the sweep journal: CRC-framed appends, torn-tail repair
// at every truncation point, and refusal to clobber foreign files.
#include "sweep/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

namespace {

namespace fs = std::filesystem;
using mach::sweep::JournalRecord;
using mach::sweep::RecordKind;
using mach::sweep::SweepJournal;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sweep_journal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.machswj").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  static JournalRecord failed(const std::string& fingerprint,
                              std::uint32_t attempt) {
    return {RecordKind::AttemptFailed, fingerprint, "cfg=" + fingerprint + "\n",
            attempt, -1, 9, "killed by signal 9"};
  }
  static JournalRecord done(const std::string& fingerprint) {
    return {RecordKind::Done, fingerprint, "cfg=" + fingerprint + "\n",
            0, 0, 0, ""};
  }

  std::vector<std::uint8_t> file_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalTest, RoundTripsRecordsAndFoldsState) {
  {
    SweepJournal journal(path_);
    EXPECT_EQ(journal.repaired_bytes(), 0u);
    journal.append(failed("aaaa", 1));
    journal.append(failed("aaaa", 2));
    journal.append(done("bbbb"));
    journal.append({RecordKind::Quarantined, "aaaa", "cfg=aaaa\n", 0, 0, 0, ""});
  }
  SweepJournal replayed(path_);
  EXPECT_EQ(replayed.repaired_bytes(), 0u);
  ASSERT_EQ(replayed.records().size(), 4u);
  EXPECT_EQ(replayed.records()[0].kind, RecordKind::AttemptFailed);
  EXPECT_EQ(replayed.records()[0].reason, "killed by signal 9");
  EXPECT_EQ(replayed.records()[0].exit_code, -1);
  EXPECT_EQ(replayed.records()[0].term_signal, 9);

  const auto& aaaa = replayed.states().at("aaaa");
  EXPECT_FALSE(aaaa.done);
  EXPECT_TRUE(aaaa.quarantined);
  ASSERT_EQ(aaaa.failures.size(), 2u);
  EXPECT_EQ(aaaa.failures[1].attempt, 2u);
  EXPECT_EQ(aaaa.canonical, "cfg=aaaa\n");
  EXPECT_TRUE(replayed.states().at("bbbb").done);
}

TEST_F(JournalTest, EveryTruncationPointRepairsToAValidPrefix) {
  {
    SweepJournal journal(path_);
    journal.append(failed("aaaa", 1));
    journal.append(done("aaaa"));
    journal.append(done("bbbb"));
  }
  const std::vector<std::uint8_t> full = file_bytes();
  ASSERT_GT(full.size(), 8u);

  // SIGKILL can tear the tail at any byte. Truncate at every length and
  // verify: open succeeds, the surviving records are a prefix of the
  // original sequence, and the journal accepts appends afterwards.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string victim =
        (dir_ / ("cut_" + std::to_string(cut) + ".machswj")).string();
    std::ofstream(victim, std::ios::binary)
        .write(reinterpret_cast<const char*>(full.data()),
               static_cast<std::streamsize>(cut));
    std::size_t survivors = 0;
    {
      SweepJournal repaired(victim);
      survivors = repaired.records().size();
      EXPECT_LE(survivors, 3u);
      for (std::size_t i = 0; i < survivors; ++i) {
        EXPECT_EQ(repaired.records()[i].fingerprint, i < 2 ? "aaaa" : "bbbb");
      }
      repaired.append(done("cccc"));
    }
    SweepJournal reread(victim);
    EXPECT_EQ(reread.repaired_bytes(), 0u) << "repair must be durable";
    ASSERT_EQ(reread.records().size(), survivors + 1);
    EXPECT_TRUE(reread.states().at("cccc").done);
  }
}

TEST_F(JournalTest, CorruptMiddleByteDropsTheTail) {
  {
    SweepJournal journal(path_);
    journal.append(done("aaaa"));
    journal.append(done("bbbb"));
  }
  std::vector<std::uint8_t> bytes = file_bytes();
  // Flip a byte inside the second record's payload: its CRC fails, so
  // replay keeps record one and repairs the rest away.
  bytes[bytes.size() - 3] ^= 0x40;
  std::ofstream(path_, std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  SweepJournal repaired(path_);
  EXPECT_GT(repaired.repaired_bytes(), 0u);
  ASSERT_EQ(repaired.records().size(), 1u);
  EXPECT_EQ(repaired.records()[0].fingerprint, "aaaa");
}

TEST_F(JournalTest, RefusesForeignFiles) {
  std::ofstream(path_, std::ios::binary) << "definitely not a journal file";
  EXPECT_THROW(SweepJournal journal(path_), std::runtime_error);
  // And the foreign file is untouched by the refusal.
  std::ifstream in(path_);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "definitely not a journal file");
}

TEST_F(JournalTest, AppendsAreDurableWithoutDestructor) {
  // Simulate "orchestrator SIGKILLed right after append returned": the
  // record must be readable by a fresh replay even though the first
  // journal object is never destroyed cleanly (we leak its fd on purpose).
  auto* journal = new SweepJournal(path_);
  journal->append(done("aaaa"));
  // No delete: the fd stays open, like a killed process's would until reap.
  SweepJournal replayed(path_);
  ASSERT_EQ(replayed.records().size(), 1u);
  EXPECT_TRUE(replayed.states().at("aaaa").done);
  delete journal;  // silence leak checkers; the property was already shown
}

}  // namespace
