// Sweep-spec parsing and expansion: deterministic odometer order, defaults
// overlay, fingerprint dedupe, and the strict rejection paths that keep a
// typo from becoming a 100k-process fork storm.
#include "sweep/spec.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using mach::sweep::SpecError;
using mach::sweep::SweepSpec;

TEST(SweepSpec, ExpandsGridInSortedKeyOrderLastAxisFastest) {
  const auto spec = SweepSpec::parse(R"({
    "name": "grid",
    "grid": {"seed": [1, 2, 3], "sampler": ["mach", "uniform"]}
  })");
  EXPECT_EQ(spec.name, "grid");
  ASSERT_EQ(spec.points.size(), 6u);
  // Axes sort to (sampler, seed); seed is the last axis, so it spins fastest.
  EXPECT_EQ(spec.points[0].canonical, "sampler=mach\nseed=1\n");
  EXPECT_EQ(spec.points[1].canonical, "sampler=mach\nseed=2\n");
  EXPECT_EQ(spec.points[2].canonical, "sampler=mach\nseed=3\n");
  EXPECT_EQ(spec.points[3].canonical, "sampler=uniform\nseed=1\n");
  EXPECT_EQ(spec.points[5].canonical, "sampler=uniform\nseed=3\n");
}

TEST(SweepSpec, DefaultsOverlayAndExplicitPointsAppend) {
  const auto spec = SweepSpec::parse(R"({
    "defaults": {"task": "mnist", "steps": 40},
    "grid": {"steps": [10, 20]},
    "points": [{"task": "fmnist", "cnn": true, "lr": 0.05}]
  })");
  ASSERT_EQ(spec.points.size(), 3u);
  // Grid values override defaults; untouched defaults ride along.
  EXPECT_EQ(spec.points[0].canonical, "steps=10\ntask=mnist\n");
  EXPECT_EQ(spec.points[1].canonical, "steps=20\ntask=mnist\n");
  // Explicit points overlay defaults too, and render bools/doubles.
  EXPECT_EQ(spec.points[2].canonical,
            "cnn=true\nlr=0.05\nsteps=40\ntask=fmnist\n");
}

TEST(SweepSpec, FingerprintsAreStableAndDistinct) {
  const auto spec = SweepSpec::parse(
      R"({"grid": {"seed": [1, 2]}, "defaults": {"task": "mnist"}})");
  ASSERT_EQ(spec.points.size(), 2u);
  EXPECT_EQ(spec.points[0].fingerprint.size(), 16u);
  EXPECT_NE(spec.points[0].fingerprint, spec.points[1].fingerprint);
  // Fingerprint is a pure function of the canonical string.
  EXPECT_EQ(spec.points[0].fingerprint,
            mach::sweep::fingerprint_config(spec.points[0].canonical));
  // And the canonical string is insertion-order independent (sorted map).
  mach::sweep::ConfigMap reordered;
  reordered["task"] = "mnist";
  reordered["seed"] = "1";
  EXPECT_EQ(mach::sweep::canonical_config(reordered),
            spec.points[0].canonical);
}

TEST(SweepSpec, DuplicatePointsCollapseByFingerprint) {
  const auto spec = SweepSpec::parse(R"({
    "grid": {"seed": [1, 2]},
    "points": [{"seed": 2}, {"seed": 3}]
  })");
  // grid gives seeds {1,2}; the explicit seed=2 duplicates a grid point.
  ASSERT_EQ(spec.points.size(), 3u);
  EXPECT_EQ(spec.duplicates_dropped, 1u);
  std::set<std::string> fingerprints;
  for (const auto& point : spec.points) fingerprints.insert(point.fingerprint);
  EXPECT_EQ(fingerprints.size(), 3u);
}

TEST(SweepSpec, IntegerValuedNumbersRenderWithoutFraction) {
  const auto spec = SweepSpec::parse(
      R"({"points": [{"steps": 40, "lr": 0.5, "participation": 1.0}]})");
  ASSERT_EQ(spec.points.size(), 1u);
  EXPECT_EQ(spec.points[0].config.at("steps"), "40");
  EXPECT_EQ(spec.points[0].config.at("lr"), "0.5");
  EXPECT_EQ(spec.points[0].config.at("participation"), "1");
}

TEST(SweepSpec, RejectsMalformedDocuments) {
  EXPECT_THROW(SweepSpec::parse("not json"), SpecError);
  EXPECT_THROW(SweepSpec::parse("[1,2,3]"), SpecError);
  EXPECT_THROW(SweepSpec::parse("{}"), SpecError);  // no points at all
  EXPECT_THROW(SweepSpec::parse(R"({"grid": []})"), SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"points": {"seed": 1}})"), SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"surprise": 1, "points": [{}]})"),
               SpecError);
}

TEST(SweepSpec, RejectsDuplicateJsonKeys) {
  // The lenient trace parser keeps the last duplicate; a config file that
  // says "seed" twice is a human error and must not silently half-apply.
  EXPECT_THROW(SweepSpec::parse(R"({
    "grid": {"seed": [1], "seed": [2]}
  })"),
               SpecError);
}

TEST(SweepSpec, RejectsEmptyGridAxis) {
  try {
    SweepSpec::parse(R"({"grid": {"sampler": []}})");
    FAIL() << "empty axis must throw";
  } catch (const SpecError& error) {
    EXPECT_NE(std::string(error.what()).find("empty"), std::string::npos);
  }
}

TEST(SweepSpec, RejectsReservedAndInvalidKeys) {
  for (const char* reserved :
       {"status", "csv", "checkpoint_dir", "checkpoint_every", "resume"}) {
    const std::string doc =
        std::string(R"({"points": [{")") + reserved + R"(": "x"}]})";
    EXPECT_THROW(SweepSpec::parse(doc), SpecError) << reserved;
  }
  EXPECT_THROW(SweepSpec::parse(R"({"points": [{"bad key": 1}]})"), SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"points": [{"9lives": 1}]})"), SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"points": [{"": 1}]})"), SpecError);
}

TEST(SweepSpec, RejectsNonScalarValuesAndControlCharacters) {
  EXPECT_THROW(SweepSpec::parse(R"({"points": [{"seed": [1, 2]}]})"),
               SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"points": [{"seed": {"a": 1}}]})"),
               SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"points": [{"seed": null}]})"), SpecError);
  EXPECT_THROW(SweepSpec::parse("{\"points\": [{\"task\": \"a\\nb\"}]}"),
               SpecError);
}

TEST(SweepSpec, EnforcesMaxPointsOnGridProducts) {
  // 40^3 = 64000 > default 4096 — rejected before expansion allocates.
  std::string axis = "[";
  for (int i = 0; i < 40; ++i) axis += (i ? "," : "") + std::to_string(i);
  axis += "]";
  const std::string doc = R"({"grid": {"a": )" + axis + R"(, "b": )" + axis +
                          R"(, "c": )" + axis + "}}";
  EXPECT_THROW(SweepSpec::parse(doc), SpecError);

  // An explicit max_points raise admits it...
  const std::string raised =
      R"({"max_points": 100000, "grid": {"a": )" + axis + R"(, "b": )" + axis +
      R"(, "c": )" + axis + "}}";
  EXPECT_EQ(SweepSpec::parse(raised).points.size(), 64000u);

  // ...but nothing gets past the hard cap.
  EXPECT_THROW(SweepSpec::parse(R"({"max_points": 200000, "points": [{}]})"),
               SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"max_points": 0, "points": [{}]})"),
               SpecError);
  EXPECT_THROW(SweepSpec::parse(R"({"max_points": 2.5, "points": [{}]})"),
               SpecError);
}

TEST(SweepSpec, ValuesMayContainSpecSyntaxCharacters) {
  // Scenario/fault/codec specs carry '=', ',', ';', ':' — all legal in
  // values; the newline-separated canonical form keeps them unambiguous.
  const auto spec = SweepSpec::parse(R"({
    "points": [{
      "scenario": "metro:stay=0.6,stations=80",
      "faults": "dropout:p=0.1;straggler:p=0.2,timeout=1.5",
      "codec": "up=topk:k=0.05,down=bf16"
    }]
  })");
  ASSERT_EQ(spec.points.size(), 1u);
  EXPECT_EQ(spec.points[0].config.at("faults"),
            "dropout:p=0.1;straggler:p=0.2,timeout=1.5");
}

TEST(SweepSpec, ParseFileReportsMissingFile) {
  EXPECT_THROW(SweepSpec::parse_file("/nonexistent/sweep.json"), SpecError);
}

}  // namespace
