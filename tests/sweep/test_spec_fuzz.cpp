// Fuzz the sweep-spec parser: whatever bytes arrive, parse() must either
// return a well-formed expansion or throw SpecError — never crash, hang, or
// expand beyond the point cap. Iteration count scales with
// MACH_SWEEP_FUZZ_ITERS (CI cranks it up; the default keeps `ctest` quick).
#include "sweep/spec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

namespace {

using mach::sweep::SpecError;
using mach::sweep::SweepSpec;

std::size_t fuzz_iterations(std::size_t fallback) {
  const char* env = std::getenv("MACH_SWEEP_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// xorshift64*: the same tiny deterministic generator the other fuzz suites
// use — failures reproduce from the logged iteration index alone.
struct Xorshift {
  std::uint64_t state;
  explicit Xorshift(std::uint64_t seed) : state(seed ? seed : 0x9e3779b9ull) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// Checks the invariants every successful parse must satisfy.
void check_expansion(const SweepSpec& spec) {
  ASSERT_FALSE(spec.points.empty());
  ASSERT_LE(spec.points.size(), 100000u);
  std::vector<std::string> fingerprints;
  for (const auto& point : spec.points) {
    ASSERT_EQ(point.fingerprint.size(), 16u);
    ASSERT_EQ(point.canonical,
              mach::sweep::canonical_config(point.config));
    ASSERT_EQ(point.fingerprint,
              mach::sweep::fingerprint_config(point.canonical));
    fingerprints.push_back(point.fingerprint);
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  ASSERT_TRUE(std::adjacent_find(fingerprints.begin(), fingerprints.end()) ==
              fingerprints.end())
      << "expansion emitted a duplicate fingerprint";
}

void must_not_crash(const std::string& document) {
  try {
    check_expansion(SweepSpec::parse(document));
  } catch (const SpecError&) {
    // Rejection is a fine outcome; crashing or std::bad_alloc is not.
  }
}

TEST(SweepSpecFuzz, RandomBytesNeverCrashTheParser) {
  Xorshift rng(0xC0FFEEull);
  const std::size_t iterations = fuzz_iterations(300);
  for (std::size_t i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    std::string document;
    const std::size_t length = rng.below(200);
    for (std::size_t j = 0; j < length; ++j) {
      document.push_back(static_cast<char>(rng.below(256)));
    }
    must_not_crash(document);
  }
}

TEST(SweepSpecFuzz, StructuredJsonNeverCrashesTheParser) {
  // JSON-shaped input exercises the validation layers below the tokenizer:
  // wrong kinds in the wrong places, hostile key names, giant products.
  Xorshift rng(0xBADC0DEull);
  const char* fragments[] = {
      "{", "}", "[", "]", ":", ",", "\"grid\"", "\"points\"", "\"defaults\"",
      "\"name\"", "\"max_points\"", "\"seed\"", "\"sampler\"", "\"csv\"",
      "\"a b\"", "\"\"", "1", "2.5", "-7", "1e300", "true", "false", "null",
      "\"mach\"", "[1,2,3]", "{\"seed\":[1]}", "100000", "0",
      "\"metro:stay=0.6\"",
  };
  const std::size_t iterations = fuzz_iterations(300);
  for (std::size_t i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    std::string document;
    const std::size_t pieces = 1 + rng.below(40);
    for (std::size_t j = 0; j < pieces; ++j) {
      document += fragments[rng.below(std::size(fragments))];
    }
    must_not_crash(document);
  }
}

TEST(SweepSpecFuzz, MutatedValidSpecsNeverCrashTheParser) {
  const std::string seed_document = R"({
    "name": "fuzz_seed",
    "defaults": {"task": "mnist", "steps": 40},
    "grid": {"sampler": ["mach", "uniform"], "seed": [1, 2, 3]},
    "points": [{"sampler": "oort", "lr": 0.05}],
    "max_points": 64
  })";
  // The pristine document must parse; mutants may do anything but crash.
  check_expansion(SweepSpec::parse(seed_document));

  Xorshift rng(0xFEEDull);
  const std::size_t iterations = fuzz_iterations(400);
  for (std::size_t i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    std::string document = seed_document;
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(document.size());
      switch (rng.below(3)) {
        case 0:  // flip a byte
          document[pos] = static_cast<char>(rng.below(256));
          break;
        case 1:  // delete a byte
          document.erase(pos, 1);
          break;
        default:  // duplicate a slice (breeds duplicate keys, nested junk)
          document.insert(pos, document.substr(pos, rng.below(16)));
          break;
      }
      if (document.empty()) document = "{";
    }
    must_not_crash(document);
  }
}

TEST(SweepSpecFuzz, HugeCartesianProductsAreRejectedQuickly) {
  // Five axes of 64 values each would be 64^5 ≈ 1.07e9 points; the parser
  // must reject from the running product, before any expansion allocates.
  std::string axis = "[";
  for (int i = 0; i < 64; ++i) axis += (i ? "," : "") + std::to_string(i);
  axis += "]";
  std::string document = "{\"grid\": {";
  for (char key = 'a'; key <= 'e'; ++key) {
    if (key != 'a') document += ",";
    document += std::string("\"") + key + "\": " + axis;
  }
  document += "}}";
  EXPECT_THROW(SweepSpec::parse(document), SpecError);
}

}  // namespace
