// End-to-end crash paths of the sweep orchestrator, against the real
// experiment_runner binary (paths injected at compile time):
//
//   * happy path + rerun dedupe (byte-identical report, zero re-execution)
//   * SIGKILLed orchestrator mid-sweep -> restart finishes every point
//     exactly once and the report matches an uninterrupted sweep's bytes
//   * SIGKILLed child mid-run -> the retry resumes from the latest snapshot
//     rather than step 0
//   * hung child -> watchdog kills it, repeated hangs quarantine the point
//   * SIGTERM drain -> resumable journal, rerun completes byte-identically
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "sweep/journal.h"
#include "sweep/orchestrator.h"
#include "sweep/spec.h"

namespace {

namespace fs = std::filesystem;
using mach::sweep::OrchestratorOptions;
using mach::sweep::RecordKind;
using mach::sweep::SweepJournal;
using mach::sweep::SweepResult;
using mach::sweep::SweepSpec;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class OrchestratorE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sweep_e2e_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  OrchestratorOptions options(const std::string& out_name) const {
    OrchestratorOptions options;
    options.runner_binary = MACH_EXPERIMENT_RUNNER_BIN;
    options.out_dir = (dir_ / out_name).string();
    options.parallel = 2;
    options.checkpoint_every = 2;
    options.poll_seconds = 0.02;
    options.backoff_base_seconds = 0.05;
    options.backoff_cap_seconds = 0.2;
    return options;
  }

  /// The small two-point sweep used by the deterministic-report tests.
  static SweepSpec small_spec() {
    return SweepSpec::parse(R"({
      "name": "e2e",
      "defaults": {"task": "mnist", "steps": 6, "devices": 12, "edges": 2,
                   "participation": 0.5},
      "grid": {"seed": [1, 2]}
    })");
  }

  fs::path dir_;
};

TEST_F(OrchestratorE2E, HappyPathThenRerunReExecutesNothing) {
  const SweepSpec spec = small_spec();
  const SweepResult first = run_sweep(spec, options("out"));
  EXPECT_EQ(first.total, 2u);
  EXPECT_EQ(first.done, 2u);
  EXPECT_EQ(first.ran_here, 2u);
  EXPECT_EQ(first.quarantined, 0u);
  EXPECT_FALSE(first.drained);
  ASSERT_FALSE(first.report_path.empty());
  const std::string report = read_file(first.report_path);
  EXPECT_NE(report.find("\"kind\":\"mach_sweep_report\""), std::string::npos);
  EXPECT_NE(report.find("\"final_accuracy\":"), std::string::npos);

  // Same spec, same out dir: the journal says everything is done, so the
  // rerun launches zero children and regenerates the identical report.
  const SweepResult second = run_sweep(spec, options("out"));
  EXPECT_EQ(second.done, 2u);
  EXPECT_EQ(second.ran_here, 0u);
  EXPECT_EQ(read_file(second.report_path), report);
}

TEST_F(OrchestratorE2E, OrchestratorSigkillMidSweepCompletesExactlyOnce) {
  // Reference: the same sweep run to completion without interference.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "killres",
    "defaults": {"task": "mnist", "steps": 6, "devices": 12, "edges": 2,
                 "participation": 0.5},
    "grid": {"seed": [1, 2, 3]}
  })");
  const SweepResult reference = run_sweep(spec, options("ref"));
  ASSERT_EQ(reference.done, 3u);
  const std::string reference_report = read_file(reference.report_path);

  // Interrupted: sweep_runner SIGKILLs itself (a real separate process —
  // raise(SIGKILL) takes the whole test down otherwise) after the first
  // point's Done record is durable.
  const std::string out = (dir_ / "out").string();
  const std::string spec_path = (dir_ / "spec.json").string();
  std::ofstream(spec_path) << R"({
    "name": "killres",
    "defaults": {"task": "mnist", "steps": 6, "devices": 12, "edges": 2,
                 "participation": 0.5},
    "grid": {"seed": [1, 2, 3]}
  })";
  const std::string base_cmd = std::string(MACH_SWEEP_RUNNER_BIN) +
                               " --spec=" + spec_path + " --out=" + out +
                               " --runner=" + MACH_EXPERIMENT_RUNNER_BIN +
                               " --parallel=1 --checkpoint_every=2" +
                               " --poll=0.02 --backoff_base=0.05";
  const int killed = std::system(
      (base_cmd + " --kill_after_points=1 > /dev/null 2>&1").c_str());
  // The shell reports a SIGKILLed child as exit 128+9; a shell-less system()
  // would surface the signal directly. Either way, it must not exit cleanly.
  const bool died_by_sigkill =
      (WIFSIGNALED(killed) && WTERMSIG(killed) == SIGKILL) ||
      (WIFEXITED(killed) && WEXITSTATUS(killed) == 128 + SIGKILL);
  ASSERT_TRUE(died_by_sigkill)
      << "harness kill did not fire, status=" << killed;

  {
    SweepJournal journal((fs::path(out) / "journal.machswj").string());
    std::size_t done_records = 0;
    for (const auto& record : journal.records()) {
      if (record.kind == RecordKind::Done) ++done_records;
    }
    ASSERT_EQ(done_records, 1u) << "exactly one point survived the kill";
  }

  // Restart with the *library* entry point (same journal, same contract):
  // the finished point is skipped, the other two run, and the report is
  // byte-identical to the uninterrupted sweep's.
  const SweepResult resumed = run_sweep(spec, options("out"));
  EXPECT_EQ(resumed.done, 3u);
  EXPECT_EQ(resumed.ran_here, 2u) << "completed point must not re-execute";
  EXPECT_EQ(read_file(resumed.report_path), reference_report);

  // The journal agrees: one Done per fingerprint, never two.
  SweepJournal journal((fs::path(out) / "journal.machswj").string());
  std::map<std::string, int> done_per_point;
  for (const auto& record : journal.records()) {
    if (record.kind == RecordKind::Done) ++done_per_point[record.fingerprint];
  }
  EXPECT_EQ(done_per_point.size(), 3u);
  for (const auto& [fingerprint, count] : done_per_point) {
    EXPECT_EQ(count, 1) << fingerprint;
  }
}

TEST_F(OrchestratorE2E, ChildSigkillRetriesResumeFromSnapshots) {
  // kill_at_step=4 with checkpoint_every=2 and steps=10 SIGKILLs the child
  // at the snapshots covering steps 4, 6 and 8 (each retry resumes further
  // along, so the kill point advances), then attempt 4 reaches step 10.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "childkill",
    "points": [{"task": "mnist", "steps": 10, "devices": 12, "edges": 2,
                "participation": 0.5, "seed": 3, "kill_at_step": 4}]
  })");
  OrchestratorOptions opts = options("out");
  opts.max_attempts = 5;
  const SweepResult result = run_sweep(spec, opts);
  EXPECT_EQ(result.done, 1u);
  EXPECT_EQ(result.quarantined, 0u);

  SweepJournal journal(
      (fs::path(opts.out_dir) / "journal.machswj").string());
  const auto& state = journal.states().at(spec.points[0].fingerprint);
  EXPECT_TRUE(state.done);
  ASSERT_EQ(state.failures.size(), 3u)
      << "resume must advance the kill point: exactly 3 kills before success";
  for (const auto& failure : state.failures) {
    EXPECT_EQ(failure.term_signal, SIGKILL);
    EXPECT_EQ(failure.exit_code, -1);
  }

  // The child's own log proves the retries resumed from snapshots instead
  // of starting over: the engine names every snapshot it restores.
  const std::string log = read_file(
      (fs::path(opts.out_dir) / "runs" / spec.points[0].fingerprint /
       "log.txt")
          .string());
  EXPECT_NE(log.find("checkpoint: loaded"), std::string::npos);
  EXPECT_NE(log.find("step 8"), std::string::npos)
      << "final attempt should restore the step-8 snapshot, not step 0";
}

TEST_F(OrchestratorE2E, HungChildIsWatchdogKilledAndQuarantined) {
  // hang_at_step freezes the child (heartbeat included) every attempt, so
  // the watchdog SIGKILLs it and the second failure quarantines the point.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "hang",
    "points": [{"task": "mnist", "steps": 50, "devices": 12, "edges": 2,
                "participation": 0.5, "hang_at_step": 1}]
  })");
  OrchestratorOptions opts = options("out");
  opts.max_attempts = 2;
  opts.watchdog_seconds = 1.5;
  const SweepResult result = run_sweep(spec, opts);
  EXPECT_EQ(result.done, 0u);
  EXPECT_EQ(result.quarantined, 1u);
  ASSERT_FALSE(result.report_path.empty())
      << "a fully-resolved sweep (even all-quarantined) gets a report";

  const std::string report = read_file(result.report_path);
  EXPECT_NE(report.find("\"outcome\":\"quarantined\""), std::string::npos);
  EXPECT_NE(report.find("watchdog: heartbeat made no progress"),
            std::string::npos);

  SweepJournal journal(
      (fs::path(opts.out_dir) / "journal.machswj").string());
  const auto& state = journal.states().at(spec.points[0].fingerprint);
  EXPECT_TRUE(state.quarantined);
  ASSERT_EQ(state.failures.size(), 2u);
  for (const auto& failure : state.failures) {
    EXPECT_EQ(failure.term_signal, SIGKILL);
    EXPECT_EQ(failure.reason, "watchdog: heartbeat made no progress");
  }
}

TEST_F(OrchestratorE2E, DrainLeavesAResumableJournal) {
  // Reference first, for the byte-identity check at the end.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "drain",
    "defaults": {"task": "mnist", "steps": 30, "devices": 16, "edges": 2,
                 "participation": 0.5},
    "grid": {"seed": [1, 2]}
  })");
  const SweepResult reference = run_sweep(spec, options("ref"));
  const std::string reference_report = read_file(reference.report_path);

  // Drain: flip the orchestrator's stop flag shortly after launch, exactly
  // as sweep_runner's SIGTERM handler would.
  static volatile std::sig_atomic_t drain_flag;
  drain_flag = 0;
  OrchestratorOptions opts = options("out");
  opts.parallel = 1;  // guarantee work is still queued when the drain lands
  opts.drain_flag = &drain_flag;
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    drain_flag = 1;
  });
  const SweepResult drained = run_sweep(spec, opts);
  trigger.join();

  if (drained.drained) {
    EXPECT_GT(drained.pending, 0u);
    EXPECT_TRUE(drained.report_path.empty())
        << "a drained sweep must not publish a partial report";
    // The drained child checkpointed: its snaps directory is non-empty for
    // at least one pending point (the in-flight one).
  } else {
    // The machine outran the 250ms trigger — legal, just less interesting.
    EXPECT_EQ(drained.done, 2u);
  }

  // Rerun to completion; the report must match the uninterrupted bytes.
  const SweepResult finished = run_sweep(spec, options("out"));
  EXPECT_EQ(finished.done, 2u);
  EXPECT_EQ(finished.pending, 0u);
  EXPECT_EQ(read_file(finished.report_path), reference_report);
}

}  // namespace
