// ScaleSimulator contract tests: determinism, bitwise resume, sublinear
// round structure, and the fixed per-device memory budget the million-device
// path is built on. Populations here are 10³–10⁴ so the suite stays fast;
// bench/scale exercises the 10⁶ end.
#include "core/scale_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ckpt/bytes.h"

namespace mach::core {
namespace {

ScaleConfig small_config() {
  ScaleConfig config;
  config.num_devices = 2000;
  config.num_edges = 16;
  config.seed = 42;
  config.participation = 0.02;
  config.cloud_every = 3;
  config.min_dwell = 3;
  config.max_dwell = 9;
  return config;
}

std::vector<ScaleRoundStats> run(ScaleSimulator& sim, std::size_t rounds) {
  std::vector<ScaleRoundStats> stats;
  stats.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) stats.push_back(sim.step());
  return stats;
}

void expect_same_stats(const std::vector<ScaleRoundStats>& a,
                       const std::vector<ScaleRoundStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].t, b[i].t);
    ASSERT_EQ(a[i].movers, b[i].movers) << "t=" << a[i].t;
    ASSERT_EQ(a[i].participants, b[i].participants) << "t=" << a[i].t;
    ASSERT_EQ(a[i].weight_rebuilds, b[i].weight_rebuilds) << "t=" << a[i].t;
    ASSERT_EQ(a[i].sample_digest, b[i].sample_digest) << "t=" << a[i].t;
  }
}

TEST(ScaleSimulator, ValidatesConfig) {
  ScaleConfig config = small_config();
  config.num_devices = 0;
  EXPECT_THROW(ScaleSimulator{config}, std::invalid_argument);
  config = small_config();
  config.num_edges = 0;
  EXPECT_THROW(ScaleSimulator{config}, std::invalid_argument);
  config = small_config();
  config.participation = 0.0;
  EXPECT_THROW(ScaleSimulator{config}, std::invalid_argument);
  config = small_config();
  config.participation = 1.5;
  EXPECT_THROW(ScaleSimulator{config}, std::invalid_argument);
  config = small_config();
  config.cloud_every = 0;
  EXPECT_THROW(ScaleSimulator{config}, std::invalid_argument);
  config = small_config();
  config.rebuild_drift = 0.0;
  EXPECT_THROW(ScaleSimulator{config}, std::invalid_argument);
  EXPECT_NO_THROW(ScaleSimulator{small_config()});
}

TEST(ScaleSimulator, MembersPartitionThePopulationEveryRound) {
  ScaleSimulator sim(small_config());
  for (std::size_t r = 0; r < 20; ++r) {
    std::set<std::uint32_t> seen;
    std::size_t total = 0;
    for (std::size_t n = 0; n < sim.num_edges(); ++n) {
      for (const std::uint32_t device : sim.edge_members(n)) {
        EXPECT_TRUE(seen.insert(device).second)
            << "device " << device << " on two edges";
        ++total;
      }
    }
    EXPECT_EQ(total, sim.num_devices());
    sim.step();
  }
}

TEST(ScaleSimulator, DeterministicAcrossInstances) {
  ScaleSimulator a(small_config());
  ScaleSimulator b(small_config());
  const auto stats_a = run(a, 30);
  const auto stats_b = run(b, 30);
  expect_same_stats(stats_a, stats_b);
  for (std::uint32_t m = 0; m < 50; ++m) {
    EXPECT_EQ(a.estimate(m), b.estimate(m)) << "device " << m;
    EXPECT_EQ(a.participations(m), b.participations(m));
  }
}

TEST(ScaleSimulator, SeedChangesTheSampleSequence) {
  ScaleConfig other = small_config();
  other.seed = 43;
  ScaleSimulator a(small_config());
  ScaleSimulator b(other);
  const auto stats_a = run(a, 10);
  const auto stats_b = run(b, 10);
  bool any_diff = false;
  for (std::size_t i = 0; i < stats_a.size(); ++i) {
    any_diff = any_diff || stats_a[i].sample_digest != stats_b[i].sample_digest;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScaleSimulator, AliasModeIsDeterministicToo) {
  ScaleConfig config = small_config();
  config.use_alias_draws = true;
  ScaleSimulator a(config);
  ScaleSimulator b(config);
  expect_same_stats(run(a, 25), run(b, 25));
  // Batch mode drops duplicate draws, so it participates at most as many
  // devices per round as the exact without-replacement path.
  ScaleSimulator exact(small_config());
  ScaleSimulator batch(config);
  for (std::size_t r = 0; r < 10; ++r) {
    const auto se = exact.step();
    const auto sb = batch.step();
    EXPECT_LE(sb.participants, se.participants + 1) << "t=" << r;
    EXPECT_GT(sb.participants, 0u);
  }
}

TEST(ScaleSimulator, SaveLoadResumesBitwise) {
  for (const bool alias : {false, true}) {
    ScaleConfig config = small_config();
    config.use_alias_draws = alias;

    ScaleSimulator live(config);
    run(live, 17);  // mid-epoch: between cloud rounds and rebuilds
    ckpt::ByteWriter snapshot;
    live.save_state(snapshot);

    ScaleSimulator restored(config);
    ckpt::ByteReader in(snapshot.data());
    restored.load_state(in);
    EXPECT_EQ(restored.t(), 17u);

    const auto tail_live = run(live, 23);
    const auto tail_restored = run(restored, 23);
    expect_same_stats(tail_live, tail_restored);
    for (std::uint32_t m = 0; m < 50; ++m) {
      EXPECT_EQ(live.estimate(m), restored.estimate(m))
          << "alias=" << alias << " device " << m;
    }
  }
}

TEST(ScaleSimulator, SaveIsNonMutatingAndStable) {
  ScaleSimulator sim(small_config());
  run(sim, 11);
  ckpt::ByteWriter first;
  sim.save_state(first);
  ckpt::ByteWriter second;
  sim.save_state(second);
  EXPECT_EQ(first.data(), second.data());
}

TEST(ScaleSimulator, RejectsForeignAndCorruptSnapshots) {
  ScaleSimulator sim(small_config());
  run(sim, 5);
  ckpt::ByteWriter snapshot;
  sim.save_state(snapshot);

  ScaleConfig other = small_config();
  other.seed = 99;
  ScaleSimulator wrong_config(other);
  ckpt::ByteReader in(snapshot.data());
  EXPECT_THROW(wrong_config.load_state(in), ckpt::CorruptPayload);

  auto truncated = snapshot.data();
  truncated.resize(truncated.size() / 2);
  ScaleSimulator target(small_config());
  ckpt::ByteReader half(truncated);
  EXPECT_THROW(target.load_state(half), ckpt::CorruptPayload);
}

TEST(ScaleSimulator, ParticipantsTrackTheConfiguredFraction) {
  ScaleConfig config = small_config();
  config.participation = 0.05;
  ScaleSimulator sim(config);
  std::size_t total = 0;
  const std::size_t rounds = 20;
  for (std::size_t r = 0; r < rounds; ++r) total += sim.step().participants;
  const double per_round = static_cast<double>(total) / rounds;
  const double expected = config.participation * config.num_devices;
  // Per-edge floors (max(1, ..)) and rounding push the realised rate up a
  // little; it must stay the right order of magnitude, not drift to O(M).
  EXPECT_GT(per_round, 0.5 * expected);
  EXPECT_LT(per_round, 3.0 * expected + config.num_edges);
}

TEST(ScaleSimulator, ExperienceConcentratesOnSampledDevices) {
  ScaleSimulator sim(small_config());
  run(sim, 40);
  std::size_t with_experience = 0;
  for (std::uint32_t m = 0; m < sim.num_devices(); ++m) {
    with_experience += sim.participations(m) > 0 ? 1 : 0;
  }
  EXPECT_GT(with_experience, 0u);
  EXPECT_LT(with_experience, sim.num_devices());  // sublinear touch per round
}

TEST(ScaleSimulator, RebuildsAmortiseGeometrically) {
  ScaleConfig config = small_config();
  config.rebuild_drift = 1e9;  // isolate the geometric schedule
  ScaleSimulator sim(config);
  std::size_t rebuilds = 0;
  const std::size_t rounds = 64;
  for (std::size_t r = 0; r < rounds; ++r) rebuilds += sim.step().weight_rebuilds;
  // Doubling schedule: each edge rebuilds O(log rounds) times, not O(rounds).
  EXPECT_LE(rebuilds, config.num_edges * 8);
  EXPECT_GE(rebuilds, config.num_edges);  // every edge rebuilt at least once
}

TEST(ScaleSimulator, MemoryStaysWithinTheFixedPerDeviceBudget) {
  ScaleConfig config = small_config();
  config.num_devices = 10000;
  config.num_edges = 50;
  ScaleSimulator sim(config);
  run(sim, 30);
  const std::size_t budget =
      ScaleSimulator::bytes_per_device() * config.num_devices +
      config.num_edges * 4096 + (1u << 20);
  EXPECT_LE(sim.memory_bytes(), budget);
  EXPECT_GT(sim.memory_bytes(),
            DeviceStateArrays::bytes_per_device() * config.num_devices);
}

TEST(DeviceStateArrays, SaveLoadRoundTripsAndValidates) {
  DeviceStateArrays arrays;
  arrays.reset(5);
  arrays.buffer_sum[2] = 1.25;
  arrays.buffer_count[2] = 3;
  arrays.max_round_avg[4] = 0.5;
  arrays.flags[4] = DeviceStateArrays::kHasEstimate;
  arrays.participations[1] = 7;
  arrays.edge[3] = 2;
  arrays.slot[3] = 9;
  arrays.weight_basis[0] = 2.5;

  ckpt::ByteWriter out;
  arrays.save(out);
  DeviceStateArrays loaded;
  loaded.reset(5);
  ckpt::ByteReader in(out.data());
  loaded.load(in);
  EXPECT_EQ(loaded.buffer_sum, arrays.buffer_sum);
  EXPECT_EQ(loaded.buffer_count, arrays.buffer_count);
  EXPECT_EQ(loaded.max_round_avg, arrays.max_round_avg);
  EXPECT_EQ(loaded.flags, arrays.flags);
  EXPECT_EQ(loaded.participations, arrays.participations);
  EXPECT_EQ(loaded.edge, arrays.edge);
  EXPECT_EQ(loaded.slot, arrays.slot);
  EXPECT_EQ(loaded.weight_basis, arrays.weight_basis);

  DeviceStateArrays wrong_size;
  wrong_size.reset(4);
  ckpt::ByteReader again(out.data());
  EXPECT_THROW(wrong_size.load(again), ckpt::CorruptPayload);
}

}  // namespace
}  // namespace mach::core
