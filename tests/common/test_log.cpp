#include "common/log.h"

#include <gtest/gtest.h>

namespace mach::common {
namespace {

/// RAII guard restoring the global log level after each test.
class LogLevelGuard {
 public:
  LogLevelGuard() : previous_(log_level()) {}
  ~LogLevelGuard() { set_log_level(previous_); }

 private:
  LogLevel previous_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, FilteredMessagesAreSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  testing::internal::CaptureStderr();
  log_info("should not appear");
  log_warn("also filtered");
  log_error("visible ", 42);
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("should not appear"), std::string::npos);
  EXPECT_EQ(output.find("also filtered"), std::string::npos);
  EXPECT_NE(output.find("[ERROR] visible 42"), std::string::npos);
}

TEST(Log, StreamsMixedArguments) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  testing::internal::CaptureStderr();
  log_debug("acc=", 0.5, " round ", 7);
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[DEBUG] acc=0.5 round 7"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  testing::internal::CaptureStderr();
  log_error("even errors");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace mach::common
