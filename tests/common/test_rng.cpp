#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mach::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitSeedProducesDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    seeds.insert(split_seed(7, id));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversFullRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  const int n = 200000;
  double mean = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    mean += x;
    m2 += x * x;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(m2 - mean * mean, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(8);
  const int n = 100000;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean += rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));  // clamped
    EXPECT_TRUE(rng.bernoulli(1.5));    // clamped
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  const int n = 100000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, GammaMeanAndVariance) {
  Rng rng(12);
  const double shape = 3.0, scale = 2.0;
  const int n = 100000;
  double mean = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    mean += x;
    m2 += x * x;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(m2 - mean * mean, shape * scale * scale, 0.5);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(13);
  const int n = 50000;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.3, 1.0);
    ASSERT_GE(x, 0.0);
    mean += x;
  }
  EXPECT_NEAR(mean / n, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, 2.0, 0.0, 1.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0], n / 4.0, n * 0.02);
  EXPECT_NEAR(counts[1], n / 2.0, n * 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], n / 4.0, n * 0.02);
}

TEST(Rng, CategoricalAllZeroReturnsSize) {
  Rng rng(15);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.categorical(weights), weights.size());
}

TEST(Rng, CategoricalNegativeTreatedAsZero) {
  Rng rng(16);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const auto draw = rng.dirichlet(0.5, 6);
    ASSERT_EQ(draw.size(), 6u);
    double total = 0.0;
    for (double d : draw) {
      EXPECT_GE(d, 0.0);
      total += d;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentrationControlsSpread) {
  Rng rng(18);
  // Small alpha -> concentrated draws (high max component), large alpha ->
  // near-uniform draws.
  double max_small = 0.0, max_large = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto small = rng.dirichlet(0.05, 5);
    const auto large = rng.dirichlet(50.0, 5);
    max_small += *std::max_element(small.begin(), small.end());
    max_large += *std::max_element(large.begin(), large.end());
  }
  EXPECT_GT(max_small / trials, 0.8);
  EXPECT_LT(max_large / trials, 0.35);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(20);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (auto s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementClampsCount) {
  Rng rng(21);
  const auto sample = rng.sample_without_replacement(5, 99);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngState, RestoredStreamContinuesIdentically) {
  Rng rng(42);
  // Burn a mixed prefix so the captured state is mid-stream, not at seed.
  for (int i = 0; i < 17; ++i) rng.uniform();
  rng.bernoulli(0.3);
  rng.uniform_int(0, 100);

  const RngState snapshot = rng.state();
  Rng restored(999);  // different seed: set_state must fully overwrite
  restored.set_state(snapshot);

  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.uniform(), restored.uniform()) << "diverged at draw " << i;
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.bernoulli(0.5), restored.bernoulli(0.5));
    EXPECT_EQ(rng.uniform_int(0, 1000), restored.uniform_int(0, 1000));
  }
}

TEST(RngState, PendingBoxMullerHalfDrawSurvivesRoundTrip) {
  Rng rng(7);
  // One normal() consumes two uniforms and caches the second Gaussian; the
  // stream is now mid-pair, the exact situation a checkpoint must preserve.
  rng.normal();
  const RngState snapshot = rng.state();
  ASSERT_TRUE(snapshot.has_cached_normal);

  Rng restored(123);
  restored.set_state(snapshot);
  // The next normal() on both streams must return the pending cached half —
  // and everything after must stay in lockstep, proving the restored stream
  // did not re-enter Box-Muller one pair early or late.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.normal(), restored.normal()) << "diverged at draw " << i;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform(), restored.uniform());
  }
}

TEST(RngState, StateEqualityDetectsPendingHalfDraw) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(a.state(), b.state());
  a.normal();  // a now holds a cached half-draw
  b.normal();
  b.normal();  // b consumed its cached half; word state matches nothing of a
  EXPECT_FALSE(a.state() == b.state());
}

}  // namespace
}  // namespace mach::common
