#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mach::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0, 7.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(stats.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  const std::vector<double> xs = {2.0, -1.0, 4.5, 0.0, 9.0, 3.3, -2.7};
  RunningStats all, a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add(xs[i]);
    (i < 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, Reset) {
  RunningStats stats;
  stats.add(5.0);
  stats.reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev of this classic example is sqrt(32/7).
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(percentile(xs, 0.0), 10.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100.0), 40.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 50.0), 25.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 25.0), 17.5, 1e-12);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_NEAR(percentile(xs, 50.0), 25.0, 1e-12);
}

TEST(Stats, PercentileEmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
}

TEST(Stats, EmaFirstValuePassthrough) {
  const std::vector<double> xs = {4.0, 0.0, 0.0};
  const auto smoothed = ema(xs, 0.5);
  ASSERT_EQ(smoothed.size(), 3u);
  EXPECT_DOUBLE_EQ(smoothed[0], 4.0);
  EXPECT_DOUBLE_EQ(smoothed[1], 2.0);
  EXPECT_DOUBLE_EQ(smoothed[2], 1.0);
}

TEST(Stats, EmaFullSmoothingTracksInput) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto smoothed = ema(xs, 1.0);
  EXPECT_EQ(smoothed, xs);
}

}  // namespace
}  // namespace mach::common
