#include "common/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mach::common {
namespace {

TEST(Cli, DefaultsApplyWithoutArguments) {
  CliParser cli("test");
  cli.add_flag("name", std::string("default"), "a string");
  cli.add_flag("count", static_cast<std::int64_t>(5), "an int");
  cli.add_flag("rate", 0.5, "a double");
  cli.add_flag("verbose", false, "a bool");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_EQ(cli.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  CliParser cli("test");
  cli.add_flag("count", static_cast<std::int64_t>(0), "");
  const char* argv[] = {"prog", "--count", "42"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(Cli, ParsesEqualsForm) {
  CliParser cli("test");
  cli.add_flag("rate", 0.0, "");
  const char* argv[] = {"prog", "--rate=2.25"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.25);
}

TEST(Cli, BooleanFlagWithoutValue) {
  CliParser cli("test");
  cli.add_flag("verbose", false, "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, BooleanAcceptsExplicitValues) {
  CliParser cli("test");
  cli.add_flag("a", true, "");
  cli.add_flag("b", false, "");
  const char* argv[] = {"prog", "--a=off", "--b=YES"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_FALSE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_FALSE(cli.help_requested());
}

TEST(Cli, MissingValueFails) {
  CliParser cli("test");
  cli.add_flag("count", static_cast<std::int64_t>(0), "");
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, PositionalArgumentFails) {
  CliParser cli("test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalseAndSetsFlag) {
  CliParser cli("test");
  cli.add_flag("x", std::string("v"), "help text");
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(out.find("--x"), std::string::npos);
  EXPECT_NE(out.find("help text"), std::string::npos);
}

TEST(Env, EnvOrFallback) {
  ::unsetenv("MACH_TEST_ENV_VAR");
  EXPECT_EQ(env_or("MACH_TEST_ENV_VAR", "fb"), "fb");
  ::setenv("MACH_TEST_ENV_VAR", "value", 1);
  EXPECT_EQ(env_or("MACH_TEST_ENV_VAR", "fb"), "value");
  ::unsetenv("MACH_TEST_ENV_VAR");
}

TEST(Env, EnvFlagTruthiness) {
  ::setenv("MACH_TEST_ENV_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("MACH_TEST_ENV_FLAG"));
  ::setenv("MACH_TEST_ENV_FLAG", "TRUE", 1);
  EXPECT_TRUE(env_flag("MACH_TEST_ENV_FLAG"));
  ::setenv("MACH_TEST_ENV_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("MACH_TEST_ENV_FLAG"));
  ::unsetenv("MACH_TEST_ENV_FLAG");
  EXPECT_FALSE(env_flag("MACH_TEST_ENV_FLAG"));
}

}  // namespace
}  // namespace mach::common
