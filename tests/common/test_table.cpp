#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mach::common {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.row().cell("alpha").cell(1.5, 1);
  table.row().cell("b").cell(static_cast<std::int64_t>(42));
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 42    |"), std::string::npos);
}

TEST(Table, NumRows) {
  Table table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.row().cell("x");
  table.row().cell("y");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, CellWithoutRowStartsOne) {
  Table table({"a"});
  table.cell("implicit");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name", "note"});
  table.row().cell("a,b").cell("say \"hi\"");
  const std::string path = testing::TempDir() + "table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream in(path);
  std::string header, line;
  std::getline(in, header);
  std::getline(in, line);
  EXPECT_EQ(header, "name,note");
  EXPECT_EQ(line, "\"a,b\",\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(Table, CsvWriteFailsForBadPath) {
  Table table({"a"});
  EXPECT_FALSE(table.write_csv("/nonexistent_dir_zz/file.csv"));
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace mach::common
