// Engine-level codec guarantees: the fp32 default takes the exact pre-codec
// path, lossy runs stay thread-count deterministic and checkpoint-resumable,
// and the byte ledger matches the message counters times the encoded payload
// size exactly — including straggler retransmissions under fault injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/bytes.h"
#include "ckpt/manager.h"
#include "ckpt/run_state.h"
#include "comm/codec.h"
#include "comm/config.h"
#include "core/registry.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "hfl/trace_canon.h"
#include "obs/jsonl_writer.h"

namespace mach::hfl {
namespace {

namespace fs = std::filesystem;
using mach::test::canonical_trace;
using mach::test::slurp;

ExperimentConfig comm_scenario(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 30;
  config.test_examples = 300;
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 2;
  config.hfl.participation = 0.6;
  config.horizon = 8;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

struct RunArtifacts {
  std::vector<float> params;
  std::string csv;
  std::vector<std::string> trace;
  CommunicationCost cost;
};

RunArtifacts run_with(const ExperimentArtifacts& artifacts,
                      const ExperimentConfig& config,
                      const comm::CommConfig& comm, std::size_t threads,
                      const fault::FaultSchedule& faults = {},
                      const std::string& sampler_name = "mach") {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = threads;
  options.comm = comm;
  options.faults = faults;
  HflSimulator simulator(artifacts.train, artifacts.test, artifacts.partition,
                         artifacts.schedule, make_model_factory(config),
                         options);

  std::ostringstream trace_stream;
  obs::JsonlTraceOptions trace_options;
  trace_options.device_events = true;
  obs::JsonlTraceWriter trace(trace_stream, trace_options);
  simulator.set_observer(&trace);

  auto sampler = core::make_sampler(sampler_name);
  const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);

  RunArtifacts result;
  result.params = simulator.global_parameters();
  result.cost = simulator.last_run_cost();
  const std::string csv_path = ::testing::TempDir() + "comm_run_" +
                               std::to_string(threads) + ".csv";
  EXPECT_TRUE(metrics.write_csv(csv_path));
  result.csv = slurp(csv_path);
  std::remove(csv_path.c_str());
  simulator.set_observer(nullptr);
  result.trace = canonical_trace(trace_stream.str());
  return result;
}

void expect_same_run(const RunArtifacts& a, const RunArtifacts& b) {
  EXPECT_EQ(a.params, b.params);  // bitwise, no tolerance
  EXPECT_EQ(a.csv, b.csv);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "event " << i;
  }
  EXPECT_EQ(a.cost.ledger, b.cost.ledger);
}

TEST(CommIntegration, ExplicitFp32MatchesTheDefaultBitwise) {
  // `--codec fp32` must be indistinguishable from not passing the flag: same
  // model path, same trace bytes, same ledger.
  const ExperimentConfig config = comm_scenario(61);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const RunArtifacts implicit = run_with(artifacts, config, {}, 1);
  const RunArtifacts explicit_fp32 =
      run_with(artifacts, config, comm::CommConfig::parse("fp32"), 1);
  expect_same_run(implicit, explicit_fp32);
  // The fp32 ledger reproduces the legacy fp32 byte assumption exactly.
  EXPECT_FALSE(implicit.cost.ledger.empty());
  EXPECT_EQ(implicit.cost.ledger.total_bytes(),
            implicit.cost.assumed_fp32_bytes());
}

TEST(CommIntegration, LossyRunIsThreadCountDeterministic) {
  // All transcodes run on the coordinator in deterministic order, so the
  // bitwise-identical-at-any-thread-count contract extends to lossy codecs
  // (including the stateful top-k error-feedback path).
  const ExperimentConfig config = comm_scenario(62);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const comm::CommConfig comm = comm::CommConfig::parse(
      "up=topk:k=0.25,down=bf16,probe=int8,edge_up=int8,cloud_down=bf16");
  const RunArtifacts serial = run_with(artifacts, config, comm, 1);
  ASSERT_FALSE(serial.params.empty());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_run(run_with(artifacts, config, comm, threads), serial);
  }
}

TEST(CommIntegration, LossyCodecActuallyChangesTheModelPath) {
  // Sanity check that the lossy configuration above is not a no-op: the
  // trained parameters must differ from the fp32 run.
  const ExperimentConfig config = comm_scenario(63);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const RunArtifacts fp32 = run_with(artifacts, config, {}, 1);
  const RunArtifacts lossy =
      run_with(artifacts, config, comm::CommConfig::parse("bf16"), 1);
  EXPECT_NE(fp32.params, lossy.params);
  // ...and its ledger is strictly smaller than the fp32 assumption.
  EXPECT_LT(lossy.cost.ledger.total_bytes(), lossy.cost.assumed_fp32_bytes());
}

// Satellite: under a straggler/dropout schedule, the ledger equals the
// message counters times the codec's value-independent payload size exactly
// — successful uploads plus every retransmission attempt, with the redundant
// retry share broken out, and dropped devices charged nothing.
TEST(CommIntegration, LedgerMatchesCountersTimesEncodedSizeUnderFaults) {
  const ExperimentConfig config = comm_scenario(64);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const fault::FaultSchedule faults = fault::FaultSchedule::parse(
      "dropout:p=0.2;straggler:p=0.35,delay=1.5,timeout=1,backoff=0.5,"
      "retries=2;seed=99");

  for (const char* spec : {"fp32", "int8", "up=topk:k=0.1,down=bf16"}) {
    SCOPED_TRACE(spec);
    const comm::CommConfig comm = comm::CommConfig::parse(spec);
    const RunArtifacts run = run_with(artifacts, config, comm, 1, faults);
    const CommunicationCost& cost = run.cost;
    ASSERT_GT(cost.model_parameters, 0u);
    ASSERT_GT(cost.retry_uploads, 0u)
        << "schedule produced no retries — property not exercised";
    ASSERT_GT(cost.device_uploads, 0u);

    const auto size_of = [&](const comm::CodecSpec& link) {
      return comm::make_codec(link)->encoded_bytes(cost.model_parameters);
    };
    const comm::ByteLedger& ledger = cost.ledger;
    // Message counts mirror the legacy counters (uploads include retries).
    EXPECT_EQ(ledger.device_upload.messages, cost.device_uploads);
    EXPECT_EQ(ledger.retry_upload.messages, cost.retry_uploads);
    EXPECT_EQ(ledger.device_download.messages, cost.device_downloads);
    EXPECT_EQ(ledger.probe_download.messages, cost.probe_downloads);
    EXPECT_EQ(ledger.edge_upload.messages, cost.edge_uploads);
    EXPECT_EQ(ledger.cloud_broadcast.messages, cost.cloud_broadcasts);
    // Bytes are exactly messages x encoded payload, per link codec.
    EXPECT_EQ(ledger.device_upload.bytes,
              cost.device_uploads * size_of(comm.device_up));
    EXPECT_EQ(ledger.retry_upload.bytes,
              cost.retry_uploads * size_of(comm.device_up));
    EXPECT_EQ(ledger.device_download.bytes,
              cost.device_downloads * size_of(comm.device_down));
    EXPECT_EQ(ledger.probe_download.bytes,
              cost.probe_downloads * size_of(comm.probe));
    EXPECT_EQ(ledger.edge_upload.bytes,
              cost.edge_uploads * size_of(comm.edge_up));
    EXPECT_EQ(ledger.cloud_broadcast.bytes,
              cost.cloud_broadcasts * size_of(comm.cloud_down));
    if (comm.all_fp32()) {
      EXPECT_EQ(ledger.total_bytes(), cost.assumed_fp32_bytes());
    }
  }
}

TEST(CommIntegration, StatefulTopKResumeIsBitwiseIdentical) {
  // SIGKILL-and-resume with per-device error-feedback residuals in flight:
  // the v2 snapshot carries the residual bank and the last broadcast, so the
  // continued run is indistinguishable from the uninterrupted one.
  const ExperimentConfig config = comm_scenario(65);
  const ExperimentArtifacts built = build_experiment(config);
  const comm::CommConfig comm =
      comm::CommConfig::parse("up=topk:k=0.2,edge_up=int8");

  const auto options_for = [&](std::size_t threads, const std::string& dir) {
    HflOptions options = config.hfl;
    options.seed = config.seed;
    options.parallel.threads = threads;
    options.comm = comm;
    options.checkpoint.dir = dir;
    options.checkpoint.every = 3;
    return options;
  };
  const auto csv_of = [](const MetricsRecorder& metrics, const char* tag) {
    const std::string path = ::testing::TempDir() + tag + std::string(".csv");
    EXPECT_TRUE(metrics.write_csv(path));
    std::string content = slurp(path);
    std::remove(path.c_str());
    return content;
  };

  const std::string ref_dir = ::testing::TempDir() + "comm_ckpt_ref";
  const std::string crash_dir = ::testing::TempDir() + "comm_ckpt_crash";
  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  const std::string ref_trace = ::testing::TempDir() + "comm_ckpt_ref.jsonl";
  const std::string crash_trace =
      ::testing::TempDir() + "comm_ckpt_crash.jsonl";

  RunArtifacts reference;
  {
    HflSimulator simulator(built.train, built.test, built.partition,
                           built.schedule, make_model_factory(config),
                           options_for(1, ref_dir));
    obs::JsonlTraceWriter trace(ref_trace);
    simulator.set_observer(&trace);
    auto sampler = core::make_sampler("mach");
    const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);
    reference.csv = csv_of(metrics, "comm_ckpt_full");
    simulator.set_observer(nullptr);
    reference.params = simulator.global_parameters();
    reference.cost = simulator.last_run_cost();
  }
  reference.trace = canonical_trace(slurp(ref_trace));

  // The "crashed" run: deterministic, so its durable snapshots and trace
  // prefix are exactly the reference's. Re-run it into crash_dir, then
  // simulate the kill by appending debris past the last snapshot.
  {
    HflSimulator simulator(built.train, built.test, built.partition,
                           built.schedule, make_model_factory(config),
                           options_for(1, crash_dir));
    obs::JsonlTraceWriter trace(crash_trace);
    simulator.set_observer(&trace);
    auto sampler = core::make_sampler("mach");
    simulator.run(*sampler, config.horizon);
    simulator.set_observer(nullptr);
  }
  {
    std::ofstream debris(crash_trace, std::ios::app);
    debris << "{\"event\":\"step\",\"t\":999,\"active_edges\":1}\n";
    debris << "{\"event\":\"device\",\"t\":999,\"dev";  // torn final write
  }

  // Resume from the newest snapshot, at a different thread count.
  RunArtifacts resumed;
  {
    ckpt::CheckpointManager manager(crash_dir);
    auto loaded = manager.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->version, ckpt::kRunStateVersion);
    ckpt::ByteReader reader(loaded->payload);
    const ckpt::RunStateHeader header = ckpt::RunStateHeader::decode(reader);
    ASSERT_TRUE(header.has_trace_cursor);

    HflSimulator simulator(built.train, built.test, built.partition,
                           built.schedule, make_model_factory(config),
                           options_for(3, crash_dir));
    const obs::TraceCursor cursor{header.trace_bytes, header.trace_lines};
    obs::JsonlTraceWriter trace(crash_trace, cursor);
    simulator.set_observer(&trace);
    simulator.set_resume_payload(loaded->payload);
    auto sampler = core::make_sampler("mach");
    const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);
    resumed.csv = csv_of(metrics, "comm_ckpt_resumed");
    simulator.set_observer(nullptr);
    resumed.params = simulator.global_parameters();
    resumed.cost = simulator.last_run_cost();
  }
  resumed.trace = canonical_trace(slurp(crash_trace));

  expect_same_run(resumed, reference);

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  std::remove(ref_trace.c_str());
  std::remove(crash_trace.c_str());
}

TEST(CommIntegration, TraceRecordsCodecAndLedger) {
  const ExperimentConfig config = comm_scenario(66);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const RunArtifacts lossy =
      run_with(artifacts, config, comm::CommConfig::parse("int8"), 1);
  ASSERT_FALSE(lossy.trace.empty());
  // run_begin carries the codec spec; run_end carries the byte ledger.
  EXPECT_NE(lossy.trace.front().find("\"codec\":\"int8\""), std::string::npos)
      << lossy.trace.front();
  EXPECT_NE(lossy.trace.back().find("\"comm\":{"), std::string::npos)
      << lossy.trace.back();
  EXPECT_NE(lossy.trace.back().find("\"device_upload\""), std::string::npos);

  // The fp32 default omits the codec field (exact legacy run_begin bytes)
  // but still reports the ledger.
  const RunArtifacts fp32 = run_with(artifacts, config, {}, 1);
  EXPECT_EQ(fp32.trace.front().find("\"codec\""), std::string::npos)
      << fp32.trace.front();
  EXPECT_NE(fp32.trace.back().find("\"comm\":{"), std::string::npos);
}

}  // namespace
}  // namespace mach::hfl
