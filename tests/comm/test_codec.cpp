// Unit coverage of the transfer codecs (src/comm/): spec parsing, wire
// layouts, per-codec error semantics, and the top-k error-feedback contract.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "comm/codec.h"
#include "comm/config.h"
#include "comm/wire.h"

namespace mach::comm {
namespace {

std::vector<float> roundtrip(const Codec& codec, std::span<const float> values,
                             std::span<const float> reference = {},
                             std::span<float> residual = {}) {
  Encoded wire;
  codec.encode(values, reference, residual, wire);
  EXPECT_EQ(wire.bytes.size(), codec.encoded_bytes(values.size()));
  std::vector<float> out;
  codec.decode(wire, values.size(), reference, out);
  return out;
}

TEST(CodecSpec, ParsesEveryKindAndRoundTrips) {
  EXPECT_EQ(CodecSpec::parse("fp32").kind, CodecKind::Fp32);
  EXPECT_EQ(CodecSpec::parse("bf16").kind, CodecKind::Bf16);
  EXPECT_EQ(CodecSpec::parse("int8").kind, CodecKind::Int8);
  const CodecSpec topk = CodecSpec::parse("topk:k=0.05");
  EXPECT_EQ(topk.kind, CodecKind::TopK);
  EXPECT_DOUBLE_EQ(topk.topk_density, 0.05);
  // Default density when no parameter is given.
  EXPECT_DOUBLE_EQ(CodecSpec::parse("topk").topk_density, 0.01);
  for (const char* spec : {"fp32", "bf16", "int8", "topk:k=0.25"}) {
    const CodecSpec parsed = CodecSpec::parse(spec);
    EXPECT_EQ(CodecSpec::parse(parsed.to_string()), parsed) << spec;
  }
}

TEST(CodecSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(CodecSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("fp16"), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("topk:k=0"), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("topk:k=1.5"), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("topk:k=-0.1"), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("topk:k=abc"), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("topk:density=0.1"), std::invalid_argument);
  EXPECT_THROW(CodecSpec::parse("fp32:k=0.1"), std::invalid_argument);
}

TEST(CommConfig, UniformAndPerLinkClauses) {
  const CommConfig uniform = CommConfig::parse("int8");
  EXPECT_EQ(uniform.device_up.kind, CodecKind::Int8);
  EXPECT_EQ(uniform.device_down.kind, CodecKind::Int8);
  EXPECT_EQ(uniform.probe.kind, CodecKind::Int8);
  EXPECT_EQ(uniform.edge_up.kind, CodecKind::Int8);
  EXPECT_EQ(uniform.cloud_down.kind, CodecKind::Int8);
  EXPECT_FALSE(uniform.all_fp32());

  const CommConfig mixed = CommConfig::parse("up=topk:k=0.05,down=bf16");
  EXPECT_EQ(mixed.device_up.kind, CodecKind::TopK);
  EXPECT_DOUBLE_EQ(mixed.device_up.topk_density, 0.05);
  EXPECT_EQ(mixed.device_down.kind, CodecKind::Bf16);
  // Unlisted links stay fp32.
  EXPECT_EQ(mixed.probe.kind, CodecKind::Fp32);
  EXPECT_EQ(mixed.edge_up.kind, CodecKind::Fp32);
  EXPECT_EQ(mixed.cloud_down.kind, CodecKind::Fp32);

  EXPECT_TRUE(CommConfig::parse("fp32").all_fp32());
  EXPECT_TRUE(CommConfig{}.all_fp32());
  // Canonical string round-trips through parse.
  for (const char* spec :
       {"fp32", "bf16", "up=topk:k=0.05,down=bf16,probe=int8",
        "edge_up=int8,cloud_down=bf16"}) {
    const CommConfig parsed = CommConfig::parse(spec);
    EXPECT_EQ(CommConfig::parse(parsed.to_string()), parsed) << spec;
  }
}

TEST(CommConfig, RejectsUnknownLinksAndDuplicates) {
  EXPECT_THROW(CommConfig::parse("sideways=int8"), std::invalid_argument);
  EXPECT_THROW(CommConfig::parse("up=int8,up=bf16"), std::invalid_argument);
  EXPECT_THROW(CommConfig::parse("up=nope"), std::invalid_argument);
  EXPECT_THROW(CommConfig::parse(""), std::invalid_argument);
}

TEST(Fp32Codec, BitExactRoundTripIncludingSpecials) {
  const auto codec = make_codec({.kind = CodecKind::Fp32});
  EXPECT_TRUE(codec->lossless());
  EXPECT_FALSE(codec->is_delta());
  EXPECT_FALSE(codec->stateful());
  EXPECT_EQ(codec->encoded_bytes(10), 40u);
  const std::vector<float> values = {
      0.0f, -0.0f, 1.0f, -1.5f, 3.1415926f,
      std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::max(),
      -std::numeric_limits<float>::min()};
  const std::vector<float> out = roundtrip(*codec, values);
  ASSERT_EQ(out.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]),
              std::bit_cast<std::uint32_t>(values[i]))
        << i;
  }
}

TEST(Bf16Codec, TruncationMatchesTheBitfieldIdiom) {
  const auto codec = make_codec({.kind = CodecKind::Bf16});
  EXPECT_FALSE(codec->lossless());
  EXPECT_EQ(codec->encoded_bytes(10), 20u);
  const std::vector<float> values = {1.0f,       -2.75f, 0.1f, 1e-30f,
                                     -12345.6f, 0.0f,   -0.0f, 65504.0f};
  const std::vector<float> out = roundtrip(*codec, values);
  ASSERT_EQ(out.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // The reference semantics: keep the high 16 bits of the IEEE-754 word
    // (sign, exponent, top 7 mantissa bits), zero the rest.
    const std::uint32_t expected =
        std::bit_cast<std::uint32_t>(values[i]) & 0xffff0000u;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]), expected) << i;
    // Relative error bound for normal values: < 2^-7.
    if (std::fabs(values[i]) >= std::numeric_limits<float>::min()) {
      EXPECT_LE(std::fabs(out[i] - values[i]),
                std::ldexp(std::fabs(values[i]), -7))
          << i;
    }
  }
  // Truncation is idempotent: re-encoding the decoded tensor is lossless.
  const std::vector<float> again = roundtrip(*codec, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(again[i]),
              std::bit_cast<std::uint32_t>(out[i]))
        << i;
  }
}

TEST(Int8Codec, SymmetricQuantisationBounds) {
  const auto codec = make_codec({.kind = CodecKind::Int8});
  EXPECT_EQ(codec->encoded_bytes(10), 14u);  // 4-byte scale + 1 byte/param
  const std::vector<float> values = {0.5f, -1.0f, 0.0f, 0.9999f, -0.25f, 1.0f};
  float max_abs = 0.0f;
  for (const float v : values) max_abs = std::max(max_abs, std::fabs(v));
  const float scale = max_abs / 127.0f;
  const std::vector<float> out = roundtrip(*codec, values);
  ASSERT_EQ(out.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Round-to-nearest: absolute error ≤ scale/2 (plus float slack).
    EXPECT_LE(std::fabs(out[i] - values[i]), scale * 0.5f + 1e-6f) << i;
    // Every output is an exact grid point q * scale with q in [-127, 127].
    const float q = out[i] / scale;
    EXPECT_NEAR(q, std::round(q), 1e-3) << i;
    EXPECT_LE(std::fabs(q), 127.5f) << i;
  }
  // The extremes survive exactly: |max| maps to ±127 * scale == ±max.
  EXPECT_FLOAT_EQ(out[1], -1.0f);
  EXPECT_FLOAT_EQ(out[5], 1.0f);
}

TEST(Int8Codec, AllZeroTensorUsesZeroScale) {
  const auto codec = make_codec({.kind = CodecKind::Int8});
  const std::vector<float> values(17, 0.0f);
  const std::vector<float> out = roundtrip(*codec, values);
  for (const float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(TopKCodec, SelectsLargestMagnitudeCorrectedEntries) {
  // density 0.5 of 6 entries -> k = 3.
  const auto codec = make_codec({.kind = CodecKind::TopK, .topk_density = 0.5});
  EXPECT_TRUE(codec->is_delta());
  EXPECT_TRUE(codec->stateful());
  EXPECT_EQ(codec->encoded_bytes(6), 4u + 8u * 3u);

  const std::vector<float> reference = {1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<float> values = {1.5f, 1.0f, 0.0f, 1.1f, 3.0f, 0.9f};
  // corrected = values - reference = {0.5, 0, -1, 0.1, 2, -0.1}
  // top-3 by |.|: indices 4 (2.0), 2 (-1.0), 0 (0.5).
  std::vector<float> residual(values.size(), 0.0f);
  Encoded wire;
  codec->encode(values, reference, residual, wire);
  std::vector<float> out;
  codec->decode(wire, values.size(), reference, out);
  ASSERT_EQ(out.size(), values.size());
  // Transmitted coordinates reconstruct exactly; others fall back to the
  // reference.
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);   // reference (delta 0 untransmitted)
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 1.0f);   // reference (delta 0.1 withheld)
  EXPECT_FLOAT_EQ(out[4], 3.0f);
  EXPECT_FLOAT_EQ(out[5], 1.0f);   // reference (delta -0.1 withheld)
  // Error feedback banks exactly what was withheld.
  ASSERT_EQ(residual.size(), values.size());
  EXPECT_FLOAT_EQ(residual[0], 0.0f);
  EXPECT_FLOAT_EQ(residual[3], 0.1f);
  EXPECT_FLOAT_EQ(residual[5], -0.1f);
  EXPECT_FLOAT_EQ(residual[2], 0.0f);  // sent -> zeroed
  EXPECT_FLOAT_EQ(residual[4], 0.0f);
}

TEST(TopKCodec, ErrorFeedbackResidualFeedsTheNextMessage) {
  const auto codec = make_codec({.kind = CodecKind::TopK, .topk_density = 0.25});
  const std::vector<float> reference(8, 0.0f);
  const std::vector<float> values = {0.4f, -0.3f, 0.2f, -0.1f,
                                     0.05f, 1.0f,  0.0f, -0.02f};
  std::vector<float> residual(values.size(), 0.0f);
  Encoded wire;
  // k = ceil(0.25 * 8) = 2: first message ships indices 5 (1.0) and 0 (0.4).
  codec->encode(values, reference, residual, wire);
  std::vector<float> first;
  codec->decode(wire, values.size(), reference, first);
  EXPECT_FLOAT_EQ(first[5], 1.0f);
  EXPECT_FLOAT_EQ(first[0], 0.4f);
  EXPECT_FLOAT_EQ(first[1], 0.0f);
  EXPECT_FLOAT_EQ(residual[1], -0.3f);

  // Second message with identical values: corrected = values + residual, so
  // the previously-withheld -0.3 at index 1 now outranks 0.2 at index 2 —
  // error feedback guarantees starved coordinates eventually transmit.
  codec->encode(values, reference, residual, wire);
  std::vector<float> second;
  codec->decode(wire, values.size(), reference, second);
  EXPECT_FLOAT_EQ(second[5], 1.0f);           // 1.0 + 0 still top
  EXPECT_FLOAT_EQ(second[1], -0.3f + -0.3f);  // banked + fresh outranks 0.4
  EXPECT_FLOAT_EQ(residual[1], 0.0f);
  EXPECT_FLOAT_EQ(residual[0], 0.4f);  // sent in msg 1, withheld in msg 2
}

TEST(TopKCodec, SentPlusResidualEqualsCorrectedBitwise) {
  const auto codec = make_codec({.kind = CodecKind::TopK, .topk_density = 0.3});
  const std::vector<float> reference = {0.5f, -0.5f, 0.25f, 0.0f, 2.0f,
                                        -1.0f, 0.125f, 0.75f, -0.375f, 1.5f};
  const std::vector<float> values = {0.55f, -0.52f, 0.5f, -0.25f, 2.5f,
                                     -1.01f, 0.125f, 0.25f, -0.375f, 1.25f};
  std::vector<float> residual(reference.size(), 0.0f);
  residual[3] = 0.75f;
  const std::vector<float> residual_before = residual;
  Encoded wire;
  codec->encode(values, reference, residual, wire);
  // Mass conservation, bitwise: every corrected entry is either transmitted
  // exactly (and its residual zeroed) or banked exactly into the residual.
  // Parse the wire directly — reconstructing "sent" as decode(...) - reference
  // would reintroduce float rounding.
  const std::uint32_t k = wire::get_u32(wire.bytes.data());
  std::vector<bool> sent(values.size(), false);
  for (std::uint32_t j = 0; j < k; ++j) {
    const std::uint32_t idx = wire::get_u32(wire.bytes.data() + 4 + 4 * j);
    const float payload = wire::get_f32(wire.bytes.data() + 4 + 4 * k + 4 * j);
    ASSERT_LT(idx, values.size());
    sent[idx] = true;
    const float corrected =
        (values[idx] - reference[idx]) + residual_before[idx];
    EXPECT_EQ(std::bit_cast<std::uint32_t>(payload),
              std::bit_cast<std::uint32_t>(corrected))
        << idx;
    EXPECT_EQ(residual[idx], 0.0f) << idx;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (sent[i]) continue;
    const float corrected = (values[i] - reference[i]) + residual_before[i];
    EXPECT_EQ(std::bit_cast<std::uint32_t>(residual[i]),
              std::bit_cast<std::uint32_t>(corrected))
        << i;
  }
  // Untransmitted coordinates decode to the reference exactly.
  std::vector<float> out;
  codec->decode(wire, values.size(), reference, out);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!sent[i]) EXPECT_EQ(out[i], reference[i]) << i;
  }
}

TEST(TopKCodec, MemorylessModeSparsifiesRawValues) {
  const auto codec = make_codec({.kind = CodecKind::TopK, .topk_density = 0.4});
  // Empty reference + null residual: plain magnitude top-k (the broadcast
  // semantic). k = ceil(0.4 * 5) = 2.
  const std::vector<float> values = {0.1f, -5.0f, 0.2f, 3.0f, -0.3f};
  const std::vector<float> out = roundtrip(*codec, values);
  EXPECT_FLOAT_EQ(out[1], -5.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[4], 0.0f);
}

TEST(TopKCodec, DeterministicTieBreakByIndex) {
  const auto codec = make_codec({.kind = CodecKind::TopK, .topk_density = 0.5});
  // All-equal magnitudes: the lowest indices win, ascending on the wire.
  const std::vector<float> values = {1.0f, -1.0f, 1.0f, -1.0f};
  const std::vector<float> out = roundtrip(*codec, values);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(TopKCodec, AtLeastOneEntryEvenAtTinyDensity) {
  const auto codec =
      make_codec({.kind = CodecKind::TopK, .topk_density = 0.001});
  // ceil(0.001 * 3) = 1, clamped to at least 1.
  EXPECT_EQ(codec->encoded_bytes(3), 4u + 8u);
  const std::vector<float> values = {0.0f, 7.0f, 0.0f};
  const std::vector<float> out = roundtrip(*codec, values);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
}

TEST(Codecs, DecodeRejectsMalformedPayloads) {
  const std::vector<float> reference;
  std::vector<float> out;
  for (const CodecSpec spec :
       {CodecSpec{.kind = CodecKind::Fp32}, CodecSpec{.kind = CodecKind::Bf16},
        CodecSpec{.kind = CodecKind::Int8},
        CodecSpec{.kind = CodecKind::TopK, .topk_density = 0.5}}) {
    const auto codec = make_codec(spec);
    Encoded wire;
    codec->encode(std::vector<float>{1.0f, 2.0f}, reference, {}, wire);
    Encoded truncated;
    truncated.bytes.assign(wire.bytes.begin(), wire.bytes.end() - 1);
    EXPECT_THROW(codec->decode(truncated, 2, reference, out),
                 std::runtime_error)
        << codec->to_string();
  }
  // TopK additionally validates indices.
  const auto topk = make_codec({.kind = CodecKind::TopK, .topk_density = 0.5});
  Encoded wire;
  topk->encode(std::vector<float>{1.0f, 2.0f}, reference, {}, wire);
  wire.bytes[4] = 9;  // first index -> out of range for count == 2
  EXPECT_THROW(topk->decode(wire, 2, reference, out), std::runtime_error);
}

TEST(Codecs, EmptyTensorsRoundTrip) {
  for (const CodecSpec spec :
       {CodecSpec{.kind = CodecKind::Fp32}, CodecSpec{.kind = CodecKind::Bf16},
        CodecSpec{.kind = CodecKind::Int8},
        CodecSpec{.kind = CodecKind::TopK, .topk_density = 0.5}}) {
    const auto codec = make_codec(spec);
    EXPECT_EQ(codec->encoded_bytes(0),
              spec.kind == CodecKind::Int8  ? 4u
              : spec.kind == CodecKind::TopK ? 4u
                                             : 0u)
        << codec->to_string();
    const std::vector<float> out = roundtrip(*codec, std::vector<float>{});
    EXPECT_TRUE(out.empty()) << codec->to_string();
  }
}

}  // namespace
}  // namespace mach::comm
