// Randomized round-trip fuzzing of every codec against its documented error
// bound. scripts/ci.sh runs this with MACH_CODEC_FUZZ_ITERS raised; the
// default keeps the suite fast for local ctest.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "comm/codec.h"
#include "comm/wire.h"
#include "common/rng.h"

namespace mach::comm {
namespace {

std::size_t fuzz_iters() {
  if (const char* env = std::getenv("MACH_CODEC_FUZZ_ITERS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 50;
}

/// Random tensor mixing scales, signs, exact zeros, and the odd huge value —
/// the shapes model deltas actually take (mostly small, a few spikes).
std::vector<float> random_tensor(common::Rng& rng, std::size_t count) {
  std::vector<float> values(count);
  for (float& v : values) {
    const double pick = rng.uniform();
    if (pick < 0.1) {
      v = 0.0f;
    } else if (pick < 0.2) {
      v = static_cast<float>(rng.normal() * 1e3);
    } else if (pick < 0.3) {
      v = static_cast<float>(rng.normal() * 1e-6);
    } else {
      v = static_cast<float>(rng.normal());
    }
  }
  return values;
}

TEST(CodecFuzz, Fp32IsBitwiseExact) {
  common::Rng rng(0xf32f32);
  const auto codec = make_codec({.kind = CodecKind::Fp32});
  for (std::size_t iter = 0; iter < fuzz_iters(); ++iter) {
    const std::size_t count = rng.uniform_index(512) + 1;
    const std::vector<float> values = random_tensor(rng, count);
    Encoded wire;
    codec->encode(values, {}, {}, wire);
    ASSERT_EQ(wire.bytes.size(), codec->encoded_bytes(count));
    std::vector<float> out;
    codec->decode(wire, count, {}, out);
    ASSERT_EQ(out.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                std::bit_cast<std::uint32_t>(values[i]))
          << "iter " << iter << " index " << i;
    }
  }
}

TEST(CodecFuzz, Bf16StaysWithinRelativeBoundAndIsIdempotent) {
  common::Rng rng(0xbf16bf16);
  const auto codec = make_codec({.kind = CodecKind::Bf16});
  for (std::size_t iter = 0; iter < fuzz_iters(); ++iter) {
    const std::size_t count = rng.uniform_index(512) + 1;
    const std::vector<float> values = random_tensor(rng, count);
    Encoded wire;
    codec->encode(values, {}, {}, wire);
    std::vector<float> out;
    codec->decode(wire, count, {}, out);
    ASSERT_EQ(out.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      // Documented bound: truncation error < 2^-7 relative for normals;
      // subnormals and zero truncate toward zero within the same magnitude.
      if (std::fabs(values[i]) >= std::numeric_limits<float>::min()) {
        ASSERT_LE(std::fabs(out[i] - values[i]),
                  std::ldexp(std::fabs(values[i]), -7))
            << "iter " << iter << " index " << i << " value " << values[i];
      } else {
        ASSERT_LE(std::fabs(out[i]), std::fabs(values[i]))
            << "iter " << iter << " index " << i;
      }
    }
    // Idempotence: a second pass over the decoded tensor is bitwise exact.
    Encoded wire2;
    codec->encode(out, {}, {}, wire2);
    std::vector<float> out2;
    codec->decode(wire2, count, {}, out2);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(out2[i]),
                std::bit_cast<std::uint32_t>(out[i]))
          << "iter " << iter << " index " << i;
    }
  }
}

TEST(CodecFuzz, Int8StaysWithinHalfScale) {
  common::Rng rng(0x1238);
  const auto codec = make_codec({.kind = CodecKind::Int8});
  for (std::size_t iter = 0; iter < fuzz_iters(); ++iter) {
    const std::size_t count = rng.uniform_index(512) + 1;
    const std::vector<float> values = random_tensor(rng, count);
    float max_abs = 0.0f;
    for (const float v : values) max_abs = std::max(max_abs, std::fabs(v));
    const float scale = max_abs / 127.0f;
    Encoded wire;
    codec->encode(values, {}, {}, wire);
    ASSERT_EQ(wire.bytes.size(), codec->encoded_bytes(count));
    std::vector<float> out;
    codec->decode(wire, count, {}, out);
    ASSERT_EQ(out.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      // Documented bound: round-to-nearest symmetric grid, error ≤ scale/2
      // (scale at the clamp boundary); small float slack for the division.
      ASSERT_LE(std::fabs(out[i] - values[i]), scale + scale * 1e-5f)
          << "iter " << iter << " index " << i << " value " << values[i]
          << " scale " << scale;
      ASSERT_LE(std::fabs(out[i]), max_abs * (1.0f + 1e-5f))
          << "iter " << iter << " index " << i;
    }
  }
}

TEST(CodecFuzz, TopKConservesMassThroughErrorFeedback) {
  common::Rng rng(0x70f);
  for (std::size_t iter = 0; iter < fuzz_iters(); ++iter) {
    const double density = rng.uniform(0.01, 0.6);
    const auto codec =
        make_codec({.kind = CodecKind::TopK, .topk_density = density});
    const std::size_t count = rng.uniform_index(300) + 4;
    const std::vector<float> reference = random_tensor(rng, count);
    std::vector<float> residual(count, 0.0f);
    // Chain several messages so the residual actually accumulates.
    for (int msg = 0; msg < 4; ++msg) {
      const std::vector<float> values = random_tensor(rng, count);
      const std::vector<float> residual_before = residual;
      Encoded wire;
      codec->encode(values, reference, residual, wire);
      ASSERT_EQ(wire.bytes.size(), codec->encoded_bytes(count));
      ASSERT_EQ(residual.size(), count);
      // Invariant (bitwise): every corrected entry is either on the wire
      // exactly with its residual zeroed, or banked exactly in the residual.
      const std::uint32_t k = wire::get_u32(wire.bytes.data());
      std::vector<bool> sent(count, false);
      for (std::uint32_t j = 0; j < k; ++j) {
        const std::uint32_t idx =
            wire::get_u32(wire.bytes.data() + 4 + 4 * j);
        const float payload =
            wire::get_f32(wire.bytes.data() + 4 + 4 * k + 4 * j);
        ASSERT_LT(idx, count);
        sent[idx] = true;
        const float corrected =
            (values[idx] - reference[idx]) + residual_before[idx];
        ASSERT_EQ(std::bit_cast<std::uint32_t>(payload),
                  std::bit_cast<std::uint32_t>(corrected))
            << "iter " << iter << " msg " << msg << " index " << idx;
        ASSERT_EQ(residual[idx], 0.0f)
            << "iter " << iter << " msg " << msg << " index " << idx;
      }
      for (std::size_t i = 0; i < count; ++i) {
        if (sent[i]) continue;
        const float corrected =
            (values[i] - reference[i]) + residual_before[i];
        ASSERT_EQ(std::bit_cast<std::uint32_t>(residual[i]),
                  std::bit_cast<std::uint32_t>(corrected))
            << "iter " << iter << " msg " << msg << " index " << i;
      }
      // Untransmitted coordinates decode to the reference exactly.
      std::vector<float> out;
      codec->decode(wire, count, reference, out);
      ASSERT_EQ(out.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        if (!sent[i]) {
          ASSERT_EQ(out[i], reference[i])
              << "iter " << iter << " msg " << msg << " index " << i;
        }
      }
    }
  }
}

TEST(CodecFuzz, WireSizeNeverDependsOnValues) {
  common::Rng rng(0x517e);
  for (const CodecSpec spec :
       {CodecSpec{.kind = CodecKind::Fp32}, CodecSpec{.kind = CodecKind::Bf16},
        CodecSpec{.kind = CodecKind::Int8},
        CodecSpec{.kind = CodecKind::TopK, .topk_density = 0.13}}) {
    const auto codec = make_codec(spec);
    for (std::size_t iter = 0; iter < fuzz_iters(); ++iter) {
      const std::size_t count = rng.uniform_index(256) + 1;
      Encoded wire;
      codec->encode(random_tensor(rng, count), {}, {}, wire);
      // encoded_bytes() is the contract the byte ledger charges by — the
      // actual payload must match it for every value pattern, including the
      // all-zero tensor.
      ASSERT_EQ(wire.bytes.size(), codec->encoded_bytes(count))
          << codec->to_string() << " count " << count;
      codec->encode(std::vector<float>(count, 0.0f), {}, {}, wire);
      ASSERT_EQ(wire.bytes.size(), codec->encoded_bytes(count))
          << codec->to_string() << " count " << count << " (zeros)";
    }
  }
}

}  // namespace
}  // namespace mach::comm
