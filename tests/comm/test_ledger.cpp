// ByteLedger / LinkTraffic arithmetic and the CommunicationCost bridge.
#include <gtest/gtest.h>

#include "comm/ledger.h"
#include "hfl/cost.h"

namespace mach::comm {
namespace {

TEST(LinkTraffic, AddChargesMessagesTimesBytes) {
  LinkTraffic link;
  link.add(3, 100);
  EXPECT_EQ(link.messages, 3u);
  EXPECT_EQ(link.bytes, 300u);
  link.add(0, 100);  // zero messages: no-op
  EXPECT_EQ(link.messages, 3u);
  EXPECT_EQ(link.bytes, 300u);
  link.add(2, 0);  // zero-byte messages still count as messages
  EXPECT_EQ(link.messages, 5u);
  EXPECT_EQ(link.bytes, 300u);

  LinkTraffic other;
  other.add(1, 50);
  link += other;
  EXPECT_EQ(link.messages, 6u);
  EXPECT_EQ(link.bytes, 350u);
}

TEST(ByteLedger, TotalsExcludeRetryShare) {
  ByteLedger ledger;
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger.total_bytes(), 0u);

  ledger.device_download.add(10, 40);   // 400
  ledger.device_upload.add(12, 40);     // 480 (includes 2 retransmissions)
  ledger.retry_upload.add(2, 40);       // redundant share of the 480
  ledger.probe_download.add(5, 40);     // 200
  ledger.edge_upload.add(2, 80);        // 160
  ledger.cloud_broadcast.add(2, 80);    // 160
  EXPECT_FALSE(ledger.empty());
  // retry_upload is already inside device_upload — not double-counted.
  EXPECT_EQ(ledger.total_bytes(), 400u + 480u + 200u + 160u + 160u);
  EXPECT_EQ(ledger.total_messages(), 10u + 12u + 5u + 2u + 2u);
  // Probes travel the device<->edge link too.
  EXPECT_EQ(ledger.device_link_bytes(), 400u + 480u + 200u);
}

TEST(ByteLedger, AccumulatesPerLink) {
  ByteLedger a;
  a.device_upload.add(4, 10);
  a.cloud_broadcast.add(1, 100);
  ByteLedger b;
  b.device_upload.add(6, 10);
  b.retry_upload.add(1, 10);
  a += b;
  EXPECT_EQ(a.device_upload.messages, 10u);
  EXPECT_EQ(a.device_upload.bytes, 100u);
  EXPECT_EQ(a.retry_upload.messages, 1u);
  EXPECT_EQ(a.cloud_broadcast.bytes, 100u);
}

TEST(ByteLedger, EmptyOnlyWhenNoLinkRecordedTraffic) {
  ByteLedger ledger;
  EXPECT_TRUE(ledger.empty());
  ledger.retry_upload.add(1, 0);  // messages without bytes still count
  EXPECT_FALSE(ledger.empty());
}

// The CommunicationCost bridge: with an empty ledger total_bytes() falls back
// to the legacy fp32 product; once the engine populates the ledger the
// encoded bytes win.
TEST(ByteLedger, CostBridgePrefersLedgerBytes) {
  hfl::CommunicationCost cost;
  cost.device_downloads = 10;
  cost.device_uploads = 10;
  cost.model_parameters = 100;
  EXPECT_EQ(cost.assumed_fp32_bytes(), 20u * 400u);
  EXPECT_EQ(cost.total_bytes(), cost.assumed_fp32_bytes());

  cost.ledger.device_download.add(10, 250);  // e.g. bf16: 2 B/param + ...
  cost.ledger.device_upload.add(10, 250);
  EXPECT_EQ(cost.total_bytes(), 5000u);
  EXPECT_EQ(cost.assumed_fp32_bytes(), 8000u);  // fp32 counterfactual intact
}

TEST(ByteLedger, CostAccumulationMergesLedgers) {
  hfl::CommunicationCost a;
  a.model_parameters = 100;
  a.ledger.device_upload.add(3, 104);
  hfl::CommunicationCost b;
  b.model_parameters = 100;
  b.ledger.device_upload.add(2, 104);
  b.ledger.retry_upload.add(1, 104);
  a += b;
  EXPECT_EQ(a.ledger.device_upload.messages, 5u);
  EXPECT_EQ(a.ledger.device_upload.bytes, 520u);
  EXPECT_EQ(a.ledger.retry_upload.messages, 1u);
  EXPECT_FALSE(a.mixed_model_sizes);
}

}  // namespace
}  // namespace mach::comm
