#include "mobility/trace_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mobility/mobility_model.h"
#include "mobility/stations.h"

namespace mach::mobility {
namespace {

TraceReplay fixed_replay() {
  // One device: stations 0 (4 steps), 1 (4 steps); another pinned at 2.
  Trace trace(2, 3, 8);
  trace.add_record({0, 0, 0, 4});
  trace.add_record({0, 1, 4, 8});
  trace.add_record({1, 2, 0, 8});
  return TraceReplay(trace);
}

TEST(TraceStats, PerDeviceBasics) {
  const std::vector<Point> stations = {{0, 0}, {10, 0}, {5, 5}};
  const auto stats = device_mobility_stats(fixed_replay(), stations);
  ASSERT_EQ(stats.size(), 2u);

  // Device 0: two stations 50/50.
  EXPECT_EQ(stats[0].distinct_stations, 2u);
  EXPECT_NEAR(stats[0].visit_entropy, std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats[0].top_station_share, 0.5);
  EXPECT_DOUBLE_EQ(stats[0].mean_dwell, 4.0);
  // Centroid (5, 0); both stations 5 away -> radius of gyration 5.
  EXPECT_NEAR(stats[0].radius_of_gyration, 5.0, 1e-9);

  // Device 1: a pure stayer.
  EXPECT_EQ(stats[1].distinct_stations, 1u);
  EXPECT_DOUBLE_EQ(stats[1].visit_entropy, 0.0);
  EXPECT_DOUBLE_EQ(stats[1].top_station_share, 1.0);
  EXPECT_DOUBLE_EQ(stats[1].mean_dwell, 8.0);
  EXPECT_DOUBLE_EQ(stats[1].radius_of_gyration, 0.0);
}

TEST(TraceStats, EmptyStationsSkipSpatialMetrics) {
  const auto stats = device_mobility_stats(fixed_replay(), {});
  EXPECT_DOUBLE_EQ(stats[0].radius_of_gyration, 0.0);
  EXPECT_EQ(stats[0].distinct_stations, 2u);  // non-spatial metrics intact
}

TEST(TraceStats, SummaryAveragesDevices) {
  const std::vector<Point> stations = {{0, 0}, {10, 0}, {5, 5}};
  const auto summary = summarize_trace(fixed_replay(), stations);
  EXPECT_DOUBLE_EQ(summary.mean_distinct_stations, 1.5);
  EXPECT_DOUBLE_EQ(summary.mean_top_station_share, 0.75);
  EXPECT_DOUBLE_EQ(summary.mean_dwell, 6.0);
  EXPECT_NEAR(summary.mean_radius_of_gyration, 2.5, 1e-9);
  // One switch by device 0 across 7 transitions x 2 devices.
  EXPECT_NEAR(summary.station_churn, 1.0 / 14.0, 1e-12);
}

TEST(TraceStats, StickierModelsHaveLongerDwellAndLowerEntropy) {
  StationLayoutSpec layout;
  layout.num_stations = 25;
  const auto stations = generate_stations(layout, 11);
  MarkovMobilityModel sticky(stations, 0.95, 20.0);
  MarkovMobilityModel jumpy(stations, 0.2, 20.0);
  const TraceReplay sticky_replay(generate_trace(sticky, 30, 200, 11));
  const TraceReplay jumpy_replay(generate_trace(jumpy, 30, 200, 11));
  const auto sticky_stats = summarize_trace(sticky_replay, stations);
  const auto jumpy_stats = summarize_trace(jumpy_replay, stations);
  EXPECT_GT(sticky_stats.mean_dwell, jumpy_stats.mean_dwell);
  EXPECT_LT(sticky_stats.mean_visit_entropy, jumpy_stats.mean_visit_entropy);
  EXPECT_LT(sticky_stats.station_churn, jumpy_stats.station_churn);
}

TEST(TraceStats, HomeBiasedDevicesHaveHighTopShare) {
  StationLayoutSpec layout;
  layout.num_stations = 20;
  const auto stations = generate_stations(layout, 12);
  HomeBiasedWaypointModel model(stations, 20, 0.6, 0.2, 15.0, 12);
  const TraceReplay replay(generate_trace(model, 20, 300, 12));
  const auto summary = summarize_trace(replay, stations);
  EXPECT_GT(summary.mean_top_station_share, 0.3);
}

}  // namespace
}  // namespace mach::mobility
