// Scenario preset/spec-grammar tests: preset resolution, override parsing,
// canonical round-trips, a fuzz sweep of malformed specs (every parse()
// either succeeds with validate() passing or throws std::invalid_argument —
// never crashes or returns garbage), and the end-to-end property the presets
// exist for: the vehicular world really does churn devices across edges
// faster than the metro world.
#include "mobility/scenario.h"

#include <gtest/gtest.h>

#include "hfl/experiment.h"

namespace mach::mobility {
namespace {

TEST(Scenario, PresetNamesResolve) {
  for (const std::string& name : Scenario::preset_names()) {
    const Scenario scenario = Scenario::preset_by_name(name);
    EXPECT_EQ(scenario.preset, name);
    EXPECT_NO_THROW(scenario.validate());
    // A bare preset name is its own canonical spec.
    EXPECT_EQ(scenario.to_string(), name);
  }
}

TEST(Scenario, UnknownPresetThrowsListingValid) {
  try {
    Scenario::preset_by_name("downtown");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("downtown"), std::string::npos);
    EXPECT_NE(what.find("metro"), std::string::npos) << what;
  }
}

TEST(Scenario, PresetsAreDistinctParameterisations) {
  const Scenario metro = Scenario::preset_by_name("metro");
  const Scenario vehicular = Scenario::preset_by_name("vehicular");
  const Scenario flash = Scenario::preset_by_name("flash_crowd");
  EXPECT_GT(metro.stay_prob, vehicular.stay_prob);
  EXPECT_LT(metro.move_range, vehicular.move_range);
  EXPECT_EQ(flash.num_hotspots, 1u);
}

TEST(Scenario, OverridesApplyAndValidate) {
  const Scenario scenario = Scenario::parse("metro:stay=0.6,stations=80");
  EXPECT_EQ(scenario.preset, "metro");
  EXPECT_DOUBLE_EQ(scenario.stay_prob, 0.6);
  EXPECT_EQ(scenario.num_stations, 80u);
  // Untouched knobs keep the preset's values.
  const Scenario base = Scenario::preset_by_name("metro");
  EXPECT_EQ(scenario.num_hotspots, base.num_hotspots);
  EXPECT_DOUBLE_EQ(scenario.move_range, base.move_range);
}

TEST(Scenario, ToStringRoundTripsThroughParse) {
  const std::vector<std::string> specs = {
      "metro",
      "campus",
      "vehicular",
      "flash_crowd",
      "metro:stay=0.6,stations=80",
      "vehicular:range=90",
      "flash_crowd:hotspots=2,background=0.1",
      "campus:area=75.5,stddev=3.25",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    const Scenario once = Scenario::parse(spec);
    const Scenario twice = Scenario::parse(once.to_string());
    EXPECT_EQ(once, twice);
    // Canonical form is a fixed point.
    EXPECT_EQ(once.to_string(), twice.to_string());
  }
}

TEST(Scenario, MalformedSpecsThrowInvalidArgument) {
  const std::vector<std::string> bad = {
      "",                            // empty spec
      "bogus",                       // unknown preset
      "metro:",                      // trailing ':' with no overrides
      "metro:stay",                  // missing '='
      "metro:stay=",                 // missing value
      "metro:=0.5",                  // missing key
      "metro:dwell=0.5",             // unknown key
      "metro:stay=0.5,stay=0.6",     // conflicting overrides
      "metro:stay=fast",             // non-numeric value
      "metro:stay=0.5x",             // trailing junk in value
      "metro:stations=0",            // stations < 1
      "metro:stay=1.5",              // stay outside [0, 1]
      "metro:stay=-0.1",             // stay outside [0, 1]
      "metro:background=2",          // background outside [0, 1]
      "metro:range=0",               // range must be positive
      "metro:area=-5",               // area must be positive
      "metro:hotspots=999",          // hotspots > stations
      "metro:,stay=0.5",             // stray ','
      "metro:stay=0.5,",             // trailing ','
      ":stay=0.5",                   // empty preset
  };
  for (const std::string& spec : bad) {
    SCOPED_TRACE("spec '" + spec + "'");
    EXPECT_THROW(Scenario::parse(spec), std::invalid_argument);
  }
}

TEST(Scenario, FuzzedSpecsNeverCrash) {
  // Deterministic mutation fuzz over the grammar's alphabet: every outcome
  // must be either a validated scenario or std::invalid_argument.
  const std::string alphabet = "metro:sty=0.5,_48xvhclbafg;|";
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 2000; ++i) {
    std::string spec;
    const std::size_t length = next() % 24;
    for (std::size_t j = 0; j < length; ++j) {
      spec += alphabet[next() % alphabet.size()];
    }
    try {
      const Scenario scenario = Scenario::parse(spec);
      EXPECT_NO_THROW(scenario.validate()) << "spec '" << spec << "'";
    } catch (const std::invalid_argument&) {
      // Expected for malformed specs.
    }
  }
}

TEST(Scenario, ApplyScenarioPastesAllKnobs) {
  auto config = hfl::ExperimentConfig::smoke(data::TaskKind::MnistLike);
  const Scenario scenario = Scenario::parse("vehicular:stations=32");
  hfl::apply_scenario(scenario, config);
  EXPECT_EQ(config.num_stations, 32u);
  EXPECT_EQ(config.num_hotspots, scenario.num_hotspots);
  EXPECT_DOUBLE_EQ(config.area_size, scenario.area_size);
  EXPECT_DOUBLE_EQ(config.hotspot_stddev, scenario.hotspot_stddev);
  EXPECT_DOUBLE_EQ(config.background_fraction, scenario.background_fraction);
  EXPECT_DOUBLE_EQ(config.stay_prob, scenario.stay_prob);
  EXPECT_DOUBLE_EQ(config.move_range, scenario.move_range);
  EXPECT_EQ(config.scenario_name, "vehicular:stations=32");
}

TEST(Scenario, VehicularWorldChurnsFasterThanMetro) {
  // The property the presets encode: a vehicular run shuffles devices across
  // edges far more often than a metro run of the same population.
  auto base = hfl::ExperimentConfig::smoke(data::TaskKind::MnistLike);
  base.num_devices = 20;
  base.num_edges = 4;
  base.train_per_device = 4;  // data size is irrelevant to the schedule
  base.test_examples = 8;
  base.horizon = 40;

  auto metro = base;
  hfl::apply_scenario(Scenario::preset_by_name("metro"), metro);
  auto vehicular = base;
  hfl::apply_scenario(Scenario::preset_by_name("vehicular"), vehicular);

  const double metro_churn =
      hfl::build_experiment(metro).schedule.churn_rate();
  const double vehicular_churn =
      hfl::build_experiment(vehicular).schedule.churn_rate();
  EXPECT_GT(vehicular_churn, metro_churn * 1.5)
      << "metro " << metro_churn << " vehicular " << vehicular_churn;
  EXPECT_GT(vehicular_churn, 0.2);
}

}  // namespace
}  // namespace mach::mobility
