#include "mobility/telecom.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mobility/stations.h"

namespace mach::mobility {
namespace {

TEST(TelecomTimestamp, ParsesAndFormats) {
  const std::string text = "2014-06-01 08:30:15";
  const std::int64_t seconds = parse_telecom_timestamp(text);
  EXPECT_EQ(format_telecom_timestamp(seconds), text);
}

TEST(TelecomTimestamp, OrderingAndDifferences) {
  const auto a = parse_telecom_timestamp("2014-06-01 00:00:00");
  const auto b = parse_telecom_timestamp("2014-06-01 01:00:00");
  const auto c = parse_telecom_timestamp("2014-06-02 00:00:00");
  EXPECT_EQ(b - a, 3600);
  EXPECT_EQ(c - a, 86400);
}

TEST(TelecomTimestamp, LeapYearHandled) {
  const auto feb28 = parse_telecom_timestamp("2016-02-28 00:00:00");
  const auto mar01 = parse_telecom_timestamp("2016-03-01 00:00:00");
  EXPECT_EQ(mar01 - feb28, 2 * 86400);  // 2016 is a leap year
}

TEST(TelecomTimestamp, RejectsMalformed) {
  EXPECT_THROW(parse_telecom_timestamp("not a date"), std::invalid_argument);
  EXPECT_THROW(parse_telecom_timestamp("2014-13-01 00:00:00"), std::invalid_argument);
  EXPECT_THROW(parse_telecom_timestamp("2014-01-01 25:00:00"), std::invalid_argument);
}

TelecomImportOptions small_options() {
  TelecomImportOptions options;
  options.step_seconds = 3600;
  options.num_devices = 2;
  options.num_stations = 3;
  options.horizon = 6;
  options.origin_time = parse_telecom_timestamp("2014-06-01 00:00:00");
  return options;
}

TEST(TelecomDiscretize, BasicSessionsAndGapFilling) {
  const auto options = small_options();
  const auto at = [&](const char* text) { return parse_telecom_timestamp(text); };
  std::vector<TelecomRecord> records = {
      // Device 0: station 0 for two hours, gap, then station 1.
      {0, 0, at("2014-06-01 00:10:00"), at("2014-06-01 01:50:00")},
      {0, 1, at("2014-06-01 04:05:00"), at("2014-06-01 05:30:00")},
      // Device 1: single session; everything else forward/backward-filled.
      {1, 2, at("2014-06-01 02:30:00"), at("2014-06-01 03:10:00")},
  };
  const Trace trace = discretize_telecom_records(records, options);
  const TraceReplay replay(trace);
  // Device 0: steps 0-1 station 0; gap steps 2-3 hold station 0; steps 4-5
  // station 1.
  EXPECT_EQ(replay.station_of(0, 0), 0u);
  EXPECT_EQ(replay.station_of(1, 0), 0u);
  EXPECT_EQ(replay.station_of(2, 0), 0u);
  EXPECT_EQ(replay.station_of(3, 0), 0u);
  EXPECT_EQ(replay.station_of(4, 0), 1u);
  EXPECT_EQ(replay.station_of(5, 0), 1u);
  // Device 1: leading gap takes the first-ever station.
  EXPECT_EQ(replay.station_of(0, 1), 2u);
  EXPECT_EQ(replay.station_of(5, 1), 2u);
}

TEST(TelecomDiscretize, OverlapLaterSessionWins) {
  const auto options = small_options();
  const auto at = [&](const char* text) { return parse_telecom_timestamp(text); };
  std::vector<TelecomRecord> records = {
      {0, 0, at("2014-06-01 00:00:00"), at("2014-06-01 06:00:00")},
      {0, 1, at("2014-06-01 02:30:00"), at("2014-06-01 03:30:00")},
      {1, 2, at("2014-06-01 00:00:00"), at("2014-06-01 06:00:00")},
  };
  const Trace trace = discretize_telecom_records(records, options);
  const TraceReplay replay(trace);
  EXPECT_EQ(replay.station_of(0, 0), 0u);
  EXPECT_EQ(replay.station_of(2, 0), 1u);  // overlapped: later start wins
  EXPECT_EQ(replay.station_of(3, 0), 1u);
  EXPECT_EQ(replay.station_of(4, 0), 0u);  // long session resumes
}

TEST(TelecomDiscretize, ValidatesInput) {
  auto options = small_options();
  const auto at = [&](const char* text) { return parse_telecom_timestamp(text); };
  const std::vector<TelecomRecord> ok = {
      {0, 0, at("2014-06-01 00:00:00"), at("2014-06-01 06:00:00")},
      {1, 1, at("2014-06-01 00:00:00"), at("2014-06-01 06:00:00")}};
  options.horizon = 0;
  EXPECT_THROW(discretize_telecom_records(ok, options), std::invalid_argument);
  options = small_options();
  const std::vector<TelecomRecord> bad_station = {
      {0, 9, at("2014-06-01 00:00:00"), at("2014-06-01 06:00:00")}};
  EXPECT_THROW(discretize_telecom_records(bad_station, options),
               std::invalid_argument);
  // Device with no sessions at all.
  const std::vector<TelecomRecord> missing_device = {
      {0, 0, at("2014-06-01 00:00:00"), at("2014-06-01 06:00:00")}};
  EXPECT_THROW(discretize_telecom_records(missing_device, options),
               std::invalid_argument);
}

TEST(TelecomCsv, RoundTrip) {
  const auto at = [&](const char* text) { return parse_telecom_timestamp(text); };
  const std::vector<TelecomRecord> records = {
      {0, 5, at("2014-06-01 08:00:00"), at("2014-06-01 09:30:00")},
      {3, 2, at("2014-07-15 23:59:59"), at("2014-07-16 00:30:00")},
  };
  const std::string path = testing::TempDir() + "telecom.csv";
  ASSERT_TRUE(write_telecom_csv(records, path));
  const auto loaded = read_telecom_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].device, 0u);
  EXPECT_EQ(loaded[0].station, 5u);
  EXPECT_EQ(loaded[0].start_time, records[0].start_time);
  EXPECT_EQ(loaded[1].end_time, records[1].end_time);
  std::remove(path.c_str());
}

TEST(TelecomCsv, MissingFileThrows) {
  EXPECT_THROW(read_telecom_csv("/no/such.csv"), std::runtime_error);
}

TEST(TelecomPipeline, SynthesizeDiscretizeRoundTrip) {
  // Full pipeline: model -> raw timestamped records -> CSV -> discretised
  // trace -> replay, exactly how a real dataset would flow in.
  StationLayoutSpec layout;
  layout.num_stations = 15;
  auto stations = generate_stations(layout, 31);
  MarkovMobilityModel model(std::move(stations), 0.8, 20.0);
  TelecomImportOptions options;
  options.step_seconds = 1800;
  options.num_devices = 12;
  options.num_stations = 15;
  options.horizon = 48;
  options.origin_time = parse_telecom_timestamp("2014-06-01 00:00:00");
  common::Rng rng(32);
  const auto records =
      synthesize_telecom_records(model, options.num_devices, options.horizon,
                                 options, rng);
  EXPECT_GE(records.size(), options.num_devices);

  const std::string path = testing::TempDir() + "telecom_pipeline.csv";
  ASSERT_TRUE(write_telecom_csv(records, path));
  const auto loaded = read_telecom_csv(path);
  const Trace trace = discretize_telecom_records(loaded, options);
  // TraceReplay construction checks the gap-free cover invariant.
  const TraceReplay replay(trace);
  EXPECT_EQ(replay.num_devices(), options.num_devices);
  EXPECT_EQ(replay.horizon(), options.horizon);
  EXPECT_GT(replay.churn_rate(), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mach::mobility
