#include "mobility/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "mobility/mobility_model.h"
#include "mobility/stations.h"

namespace mach::mobility {
namespace {

TEST(Trace, AddRecordValidates) {
  Trace trace(2, 3, 10);
  EXPECT_NO_THROW(trace.add_record({0, 0, 0, 5}));
  EXPECT_THROW(trace.add_record({2, 0, 0, 5}), std::invalid_argument);  // device
  EXPECT_THROW(trace.add_record({0, 3, 0, 5}), std::invalid_argument);  // station
  EXPECT_THROW(trace.add_record({0, 0, 5, 5}), std::invalid_argument);  // empty span
  EXPECT_THROW(trace.add_record({0, 0, 6, 5}), std::invalid_argument);  // inverted
  EXPECT_THROW(trace.add_record({0, 0, 0, 11}), std::invalid_argument); // beyond horizon
}

TEST(Trace, MeanDwell) {
  Trace trace(2, 2, 10);
  trace.add_record({0, 0, 0, 4});   // 4 steps
  trace.add_record({0, 1, 4, 10});  // 6 steps
  EXPECT_DOUBLE_EQ(trace.mean_dwell(), 5.0);
}

TEST(TraceReplay, ResolvesStations) {
  Trace trace(2, 3, 6);
  trace.add_record({0, 1, 0, 6});
  trace.add_record({1, 0, 0, 3});
  trace.add_record({1, 2, 3, 6});
  const TraceReplay replay(trace);
  EXPECT_EQ(replay.station_of(0, 0), 1u);
  EXPECT_EQ(replay.station_of(5, 0), 1u);
  EXPECT_EQ(replay.station_of(2, 1), 0u);
  EXPECT_EQ(replay.station_of(3, 1), 2u);
}

TEST(TraceReplay, RejectsOverlap) {
  Trace trace(1, 2, 6);
  trace.add_record({0, 0, 0, 4});
  trace.add_record({0, 1, 3, 6});
  EXPECT_THROW(TraceReplay{trace}, std::invalid_argument);
}

TEST(TraceReplay, RejectsGaps) {
  Trace trace(1, 2, 6);
  trace.add_record({0, 0, 0, 3});
  // steps 3..5 uncovered
  EXPECT_THROW(TraceReplay{trace}, std::invalid_argument);
}

TEST(TraceReplay, ChurnRate) {
  Trace trace(1, 2, 4);
  trace.add_record({0, 0, 0, 2});
  trace.add_record({0, 1, 2, 4});
  const TraceReplay replay(trace);
  // One switch over three transitions.
  EXPECT_NEAR(replay.churn_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Trace, CsvRoundTrip) {
  Trace trace(2, 3, 8);
  trace.add_record({0, 2, 0, 8});
  trace.add_record({1, 1, 0, 4});
  trace.add_record({1, 0, 4, 8});
  const std::string path = testing::TempDir() + "trace_roundtrip.csv";
  ASSERT_TRUE(trace.write_csv(path));
  const Trace loaded = Trace::read_csv(path, 2, 3, 8);
  ASSERT_EQ(loaded.records().size(), trace.records().size());
  for (std::size_t i = 0; i < loaded.records().size(); ++i) {
    EXPECT_EQ(loaded.records()[i].device, trace.records()[i].device);
    EXPECT_EQ(loaded.records()[i].station, trace.records()[i].station);
    EXPECT_EQ(loaded.records()[i].t_start, trace.records()[i].t_start);
    EXPECT_EQ(loaded.records()[i].t_end, trace.records()[i].t_end);
  }
  std::remove(path.c_str());
}

TEST(Trace, ReadCsvMissingFileThrows) {
  EXPECT_THROW(Trace::read_csv("/no/such/file.csv", 1, 1, 1), std::runtime_error);
}

TEST(Trace, MeanDwellOfEmptyTraceIsZero) {
  const Trace trace(3, 2, 10);
  EXPECT_DOUBLE_EQ(trace.mean_dwell(), 0.0);
}

namespace {
std::string write_lines(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << "device,station,t_start,t_end\n" << body;
  return path;
}

std::string read_csv_error(const std::string& path) {
  try {
    Trace::read_csv(path, 4, 4, 16);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}
}  // namespace

TEST(Trace, ReadCsvRejectsBadRecordsWithLineContext) {
  struct Case {
    const char* name;
    const char* body;
    const char* expect;  // substring of the error message
  };
  const Case cases[] = {
      {"empty_interval.csv", "0,1,0,4\n1,2,5,5\n", "t_end <= t_start"},
      {"inverted_interval.csv", "2,0,6,3\n", "t_end <= t_start"},
      {"bad_device.csv", "0,1,0,4\n9,1,0,4\n", "device id out of range"},
      {"bad_station.csv", "0,7,0,4\n", "station id out of range"},
      {"past_horizon.csv", "0,1,0,99\n", "past the horizon"},
      {"garbage.csv", "0,1,zero,4\n", "malformed record"},
  };
  for (const auto& c : cases) {
    const std::string path = write_lines(c.name, c.body);
    const std::string error = read_csv_error(path);
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << c.name << ": " << error;
    // Every rejection names the offending line so a corrupt multi-GB trace
    // file is debuggable.
    EXPECT_NE(error.find("at line"), std::string::npos) << c.name;
    std::remove(path.c_str());
  }
  // The line number is 1-based and counts the header.
  const std::string path = write_lines("line_number.csv", "0,1,0,4\n1,2,4,4\n");
  const std::string error = read_csv_error(path);
  EXPECT_NE(error.find("at line 3"), std::string::npos) << error;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Mobility models feeding traces.
// ---------------------------------------------------------------------------

class GeneratedTraceProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(GeneratedTraceProperty, CoversEveryDeviceEveryStep) {
  const auto [stay_prob, seed] = GetParam();
  StationLayoutSpec layout;
  layout.num_stations = 20;
  auto stations = generate_stations(layout, seed);
  MarkovMobilityModel model(std::move(stations), stay_prob, 20.0);
  const std::size_t devices = 15, horizon = 40;
  const Trace trace = generate_trace(model, devices, horizon, seed);
  // TraceReplay construction itself asserts the exact-cover invariant (Eq. 1
  // at station level); additionally check record count sanity.
  const TraceReplay replay(trace);
  EXPECT_EQ(replay.horizon(), horizon);
  EXPECT_EQ(replay.num_devices(), devices);
  EXPECT_GE(trace.records().size(), devices);  // at least one record each
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratedTraceProperty,
    ::testing::Combine(::testing::Values(0.0, 0.5, 0.9, 0.99),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{7})));

TEST(MarkovMobilityModel, HigherStayProbLowersChurn) {
  StationLayoutSpec layout;
  layout.num_stations = 25;
  const auto stations = generate_stations(layout, 3);
  MarkovMobilityModel sticky(stations, 0.95, 20.0);
  MarkovMobilityModel jumpy(stations, 0.1, 20.0);
  const Trace trace_sticky = generate_trace(sticky, 30, 100, 3);
  const Trace trace_jumpy = generate_trace(jumpy, 30, 100, 3);
  EXPECT_LT(TraceReplay(trace_sticky).churn_rate(),
            TraceReplay(trace_jumpy).churn_rate());
}

TEST(MarkovMobilityModel, InvalidConfigThrows) {
  const std::vector<Point> stations = {{0, 0}, {1, 1}};
  EXPECT_THROW(MarkovMobilityModel({}, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(MarkovMobilityModel(stations, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MarkovMobilityModel(stations, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(MarkovMobilityModel(stations, 0.5, 0.0), std::invalid_argument);
}

TEST(MarkovMobilityModel, PrefersNearbyStations) {
  // Stations: cluster at origin plus one far outlier; transitions from the
  // cluster should rarely pick the outlier.
  std::vector<Point> stations = {{0, 0}, {1, 0}, {0, 1}, {500, 500}};
  MarkovMobilityModel model(stations, 0.0, 5.0);
  common::Rng rng(4);
  int outlier = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (model.next_station(0, 0, rng) == 3u) ++outlier;
  }
  EXPECT_LT(outlier, n / 100);
}

TEST(HomeBiasedWaypointModel, StartsAtHomeAndReturns) {
  StationLayoutSpec layout;
  layout.num_stations = 15;
  const auto stations = generate_stations(layout, 5);
  HomeBiasedWaypointModel model(stations, 10, 0.5, 0.3, 20.0, 5);
  common::Rng rng(6);
  for (std::uint32_t m = 0; m < 10; ++m) {
    EXPECT_EQ(model.initial_station(m, rng), model.home_of(m));
  }
  // Over a long run, a device spends a plurality of time at home.
  const Trace trace = generate_trace(model, 10, 300, 6);
  const TraceReplay replay(trace);
  for (std::uint32_t m = 0; m < 10; ++m) {
    std::size_t at_home = 0;
    for (std::size_t t = 0; t < replay.horizon(); ++t) {
      if (replay.station_of(t, m) == model.home_of(m)) ++at_home;
    }
    EXPECT_GT(at_home, replay.horizon() / 5);
  }
}

TEST(GenerateTrace, ZeroHorizonThrows) {
  const std::vector<Point> stations = {{0, 0}};
  MarkovMobilityModel model(stations, 0.5, 1.0);
  EXPECT_THROW(generate_trace(model, 1, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mach::mobility
