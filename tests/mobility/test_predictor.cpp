#include "mobility/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mobility/mobility_model.h"
#include "mobility/stations.h"

namespace mach::mobility {
namespace {

TEST(MarkovPredictor, ValidatesConstruction) {
  EXPECT_THROW(MarkovPredictor(0, 5, true), std::invalid_argument);
  EXPECT_NO_THROW(MarkovPredictor(3, 5, true));
  EXPECT_NO_THROW(MarkovPredictor(3, 5, false));
}

TEST(MarkovPredictor, ObserveValidatesEdges) {
  MarkovPredictor predictor(2, 1, true);
  EXPECT_THROW(predictor.observe(0, 2, 0), std::out_of_range);
  EXPECT_THROW(predictor.observe(0, 0, 2), std::out_of_range);
  EXPECT_NO_THROW(predictor.observe(0, 0, 1));
}

TEST(MarkovPredictor, UnseenRowPredictsStay) {
  MarkovPredictor predictor(3, 1, true);
  const auto distribution = predictor.next_edge_distribution(0, 1);
  EXPECT_DOUBLE_EQ(distribution[1], 1.0);
  EXPECT_EQ(predictor.predict(0, 1), 1u);
}

TEST(MarkovPredictor, LearnsDeterministicCycle) {
  // Device cycles 0 -> 1 -> 2 -> 0 forever.
  std::vector<std::uint32_t> grid;
  const std::size_t horizon = 30;
  for (std::size_t t = 0; t < horizon; ++t) {
    grid.push_back(static_cast<std::uint32_t>(t % 3));
  }
  const MobilitySchedule schedule(3, 1, horizon, std::move(grid));
  MarkovPredictor predictor(3, 1, true);
  predictor.fit(schedule, 0, 20);
  EXPECT_EQ(predictor.predict(0, 0), 1u);
  EXPECT_EQ(predictor.predict(0, 1), 2u);
  EXPECT_EQ(predictor.predict(0, 2), 0u);
  EXPECT_DOUBLE_EQ(predictor.evaluate(schedule, 20, horizon), 1.0);
}

TEST(MarkovPredictor, DistributionsAreNormalised) {
  MarkovPredictor predictor(4, 2, false);
  predictor.observe(0, 0, 1);
  predictor.observe(0, 0, 1);
  predictor.observe(0, 0, 2);
  predictor.observe(1, 0, 3);
  for (std::uint32_t device : {0u, 1u}) {
    for (std::uint32_t edge = 0; edge < 4; ++edge) {
      const auto distribution = predictor.next_edge_distribution(device, edge);
      double total = 0.0;
      for (double p : distribution) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(MarkovPredictor, PersonalisedBeatsPooledOnHeterogeneousDevices) {
  // Device 0 always goes 0 -> 1; device 1 always goes 0 -> 2. The pooled
  // model sees a 50/50 split, the personalised model learns each perfectly.
  MarkovPredictor pooled(3, 2, true);
  MarkovPredictor personal(3, 2, false);
  for (int i = 0; i < 10; ++i) {
    pooled.observe(0, 0, 1);
    pooled.observe(1, 0, 2);
    personal.observe(0, 0, 1);
    personal.observe(1, 0, 2);
  }
  EXPECT_EQ(personal.predict(0, 0), 1u);
  EXPECT_EQ(personal.predict(1, 0), 2u);
  const auto distribution = pooled.next_edge_distribution(0, 0);
  EXPECT_NEAR(distribution[1], 0.5, 1e-12);
  EXPECT_NEAR(distribution[2], 0.5, 1e-12);
}

TEST(MarkovPredictor, BeatsChanceOnSyntheticTrace) {
  // Fit on the first half of a realistic trace, evaluate on the second half;
  // sticky mobility must be predictable well above the 1/edges baseline.
  StationLayoutSpec layout;
  layout.num_stations = 30;
  auto stations = generate_stations(layout, 21);
  const auto clustering = cluster_stations(stations, 6, 21);
  MarkovMobilityModel model(std::move(stations), 0.85, 20.0);
  const Trace trace = generate_trace(model, 40, 200, 21);
  const TraceReplay replay(trace);
  const auto schedule = MobilitySchedule::from_trace(replay, clustering);

  MarkovPredictor predictor(6, 40, true);
  predictor.fit(schedule, 0, 100);
  const double accuracy = predictor.evaluate(schedule, 100, 200);
  EXPECT_GT(accuracy, 0.5);  // stay-heavy chains are easy; chance is ~1/6
}

TEST(MarkovPredictor, EmptyFitRangeIsNoop) {
  MarkovPredictor predictor(2, 1, true);
  const MobilitySchedule schedule(2, 1, 4, {0, 1, 0, 1});
  predictor.fit(schedule, 3, 3);
  // Still no data: stay prediction.
  EXPECT_EQ(predictor.predict(0, 0), 0u);
}

}  // namespace
}  // namespace mach::mobility
