#include "mobility/stations.h"

#include <gtest/gtest.h>

#include <set>

namespace mach::mobility {
namespace {

TEST(Geo, DistanceBasics) {
  const Point a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(Geo, NearestPoint) {
  const std::vector<Point> points = {{0, 0}, {10, 0}, {5, 5}};
  EXPECT_EQ(nearest_point(points, {1, 1}), 0u);
  EXPECT_EQ(nearest_point(points, {9, 1}), 1u);
  EXPECT_EQ(nearest_point(points, {5, 4}), 2u);
}

TEST(Stations, GeneratesRequestedCountInsideArea) {
  StationLayoutSpec spec;
  spec.num_stations = 75;
  const auto stations = generate_stations(spec, 1);
  ASSERT_EQ(stations.size(), 75u);
  for (const auto& s : stations) {
    EXPECT_GE(s.x, 0.0);
    EXPECT_LE(s.x, spec.area_size);
    EXPECT_GE(s.y, 0.0);
    EXPECT_LE(s.y, spec.area_size);
  }
}

TEST(Stations, DeterministicForSeed) {
  StationLayoutSpec spec;
  const auto a = generate_stations(spec, 7);
  const auto b = generate_stations(spec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
  const auto c = generate_stations(spec, 8);
  bool different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    different |= a[i].x != c[i].x;
  }
  EXPECT_TRUE(different);
}

TEST(Stations, EmptySpecThrows) {
  StationLayoutSpec spec;
  spec.num_stations = 0;
  EXPECT_THROW(generate_stations(spec, 1), std::invalid_argument);
}

class ClusteringProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(ClusteringProperty, AllClustersNonEmptyAndAssignmentsValid) {
  const auto [k, seed] = GetParam();
  StationLayoutSpec spec;
  spec.num_stations = 50;
  const auto stations = generate_stations(spec, seed);
  const Clustering clustering = cluster_stations(stations, k, seed);
  ASSERT_EQ(clustering.num_clusters(), k);
  ASSERT_EQ(clustering.assignment.size(), stations.size());
  std::vector<std::size_t> counts(k, 0);
  for (auto a : clustering.assignment) {
    ASSERT_LT(a, k);
    ++counts[a];
  }
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_GT(counts[c], 0u) << "cluster " << c << " empty (k=" << k << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusteringProperty,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5}, std::size_t{10},
                                         std::size_t{50}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

TEST(Clustering, BadKThrows) {
  const std::vector<Point> stations = {{0, 0}, {1, 1}};
  EXPECT_THROW(cluster_stations(stations, 0, 1), std::invalid_argument);
  EXPECT_THROW(cluster_stations(stations, 3, 1), std::invalid_argument);
}

TEST(Clustering, SeparatedGroupsAreSplit) {
  // Two tight groups far apart must land in different clusters.
  std::vector<Point> stations;
  for (int i = 0; i < 10; ++i) stations.push_back({0.0 + 0.1 * i, 0.0});
  for (int i = 0; i < 10; ++i) stations.push_back({100.0 + 0.1 * i, 100.0});
  const Clustering clustering = cluster_stations(stations, 2, 5);
  const auto group_a = clustering.assignment[0];
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(clustering.assignment[i], group_a);
  const auto group_b = clustering.assignment[10];
  EXPECT_NE(group_a, group_b);
  for (std::size_t i = 10; i < 20; ++i) EXPECT_EQ(clustering.assignment[i], group_b);
}

}  // namespace
}  // namespace mach::mobility
