#include "mobility/schedule.h"

#include <gtest/gtest.h>

#include "mobility/mobility_model.h"

namespace mach::mobility {
namespace {

TEST(MobilitySchedule, ValidatesConstruction) {
  EXPECT_THROW(MobilitySchedule(0, 2, 2, {}), std::invalid_argument);
  EXPECT_THROW(MobilitySchedule(2, 2, 2, {0, 0, 0}), std::invalid_argument);  // size
  EXPECT_THROW(MobilitySchedule(2, 2, 1, {0, 2}), std::invalid_argument);  // edge id
  EXPECT_NO_THROW(MobilitySchedule(2, 2, 1, {0, 1}));
}

TEST(MobilitySchedule, EdgeOfWrapsAroundHorizon) {
  // horizon 2: t=0 -> edge 0, t=1 -> edge 1, t=2 wraps to edge 0.
  MobilitySchedule schedule(2, 1, 2, {0, 1});
  EXPECT_EQ(schedule.edge_of(0, 0), 0u);
  EXPECT_EQ(schedule.edge_of(1, 0), 1u);
  EXPECT_EQ(schedule.edge_of(2, 0), 0u);
  EXPECT_EQ(schedule.edge_of(3, 0), 1u);
}

TEST(MobilitySchedule, DevicesPerEdgeIsPartition) {
  common::Rng rng(1);
  const auto schedule = MobilitySchedule::uniform_random(4, 30, 20, rng);
  for (std::size_t t = 0; t < 20; ++t) {
    const auto per_edge = schedule.devices_per_edge(t);
    ASSERT_EQ(per_edge.size(), 4u);
    std::vector<bool> seen(30, false);
    std::size_t total = 0;
    for (std::size_t n = 0; n < per_edge.size(); ++n) {
      for (auto device : per_edge[n]) {
        EXPECT_EQ(schedule.edge_of(t, device), n);
        EXPECT_FALSE(seen[device]);  // Eq. (1): edges are disjoint
        seen[device] = true;
        ++total;
      }
    }
    EXPECT_EQ(total, 30u);  // Eq. (1): union covers all devices
  }
}

TEST(MobilitySchedule, StationaryHasZeroChurn) {
  common::Rng rng(2);
  const auto schedule = MobilitySchedule::stationary(5, 40, 50, rng);
  EXPECT_DOUBLE_EQ(schedule.churn_rate(), 0.0);
  for (std::size_t m = 0; m < 40; ++m) {
    const auto edge = schedule.edge_of(0, m);
    for (std::size_t t = 1; t < 50; ++t) EXPECT_EQ(schedule.edge_of(t, m), edge);
  }
}

TEST(MobilitySchedule, UniformRandomChurnNearExpected) {
  common::Rng rng(3);
  const std::size_t edges = 5;
  const auto schedule = MobilitySchedule::uniform_random(edges, 100, 200, rng);
  // Probability of switching between independent uniform draws: 1 - 1/n.
  EXPECT_NEAR(schedule.churn_rate(), 1.0 - 1.0 / edges, 0.02);
}

TEST(MobilitySchedule, MeanEdgeOccupancySumsToOne) {
  common::Rng rng(4);
  const auto schedule = MobilitySchedule::uniform_random(6, 50, 30, rng);
  const auto occupancy = schedule.mean_edge_occupancy();
  ASSERT_EQ(occupancy.size(), 6u);
  double total = 0.0;
  for (double o : occupancy) total += o;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MobilitySchedule, FromTraceMapsThroughClustering) {
  Trace trace(2, 4, 3);
  trace.add_record({0, 0, 0, 3});
  trace.add_record({1, 3, 0, 2});
  trace.add_record({1, 1, 2, 3});
  const TraceReplay replay(trace);
  Clustering clustering;
  clustering.assignment = {0, 0, 1, 1};  // stations 0,1 -> edge 0; 2,3 -> edge 1
  clustering.centroids = {{0, 0}, {10, 10}};
  const auto schedule = MobilitySchedule::from_trace(replay, clustering);
  EXPECT_EQ(schedule.num_edges(), 2u);
  EXPECT_EQ(schedule.edge_of(0, 0), 0u);
  EXPECT_EQ(schedule.edge_of(0, 1), 1u);
  EXPECT_EQ(schedule.edge_of(2, 1), 0u);
}

TEST(MobilitySchedule, FromStreamMatchesFromTrace) {
  StationLayoutSpec layout;
  layout.num_stations = 12;
  auto stations = generate_stations(layout, 4);
  const auto clustering = cluster_stations(stations, 3, 4);
  MarkovMobilityModel model_a(stations, 0.5, 10.0);
  MarkovMobilityModel model_b(stations, 0.5, 10.0);
  const Trace trace = generate_trace(model_a, 20, 25, 4);
  const TraceReplay replay(trace);
  const auto dense = MobilitySchedule::from_trace(replay, clustering);
  ModelTraceStream stream(model_b, 20, 4);
  const auto streamed = MobilitySchedule::from_stream(stream, clustering, 25);
  ASSERT_EQ(streamed.num_edges(), dense.num_edges());
  ASSERT_EQ(streamed.horizon(), dense.horizon());
  for (std::size_t t = 0; t < 25; ++t) {
    for (std::size_t m = 0; m < 20; ++m) {
      ASSERT_EQ(streamed.edge_of(t, m), dense.edge_of(t, m))
          << "t=" << t << " device=" << m;
    }
  }
}

TEST(MobilitySchedule, DevicesPerEdgeIntoMatchesAllocatingVersion) {
  common::Rng rng(3);
  const auto schedule = MobilitySchedule::uniform_random(4, 30, 6, rng);
  std::vector<std::vector<std::uint32_t>> reused;
  for (std::size_t t = 0; t < 6; ++t) {
    schedule.devices_per_edge_into(t, reused);
    EXPECT_EQ(reused, schedule.devices_per_edge(t)) << "t=" << t;
  }
}

TEST(MobilitySchedule, EdgeChurnNotAboveStationChurn) {
  // Moving between stations of the same cluster is not an edge switch, so
  // edge churn is bounded by station churn.
  StationLayoutSpec layout;
  layout.num_stations = 30;
  auto stations = generate_stations(layout, 9);
  const auto clustering = cluster_stations(stations, 5, 9);
  MarkovMobilityModel model(std::move(stations), 0.5, 15.0);
  const Trace trace = generate_trace(model, 40, 120, 9);
  const TraceReplay replay(trace);
  const auto schedule = MobilitySchedule::from_trace(replay, clustering);
  EXPECT_LE(schedule.churn_rate(), replay.churn_rate() + 1e-12);
  EXPECT_GT(schedule.churn_rate(), 0.0);
}

}  // namespace
}  // namespace mach::mobility
