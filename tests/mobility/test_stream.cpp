#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ckpt/bytes.h"
#include "common/rng.h"
#include "mobility/mobility_model.h"
#include "mobility/stations.h"
#include "mobility/stream.h"
#include "mobility/trace.h"

namespace mach::mobility {
namespace {

std::vector<Point> test_stations(std::size_t count, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Point> points(count);
  for (auto& p : points) p = {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
  return points;
}

TEST(ModelTraceStream, MatchesGenerateTraceAtEveryStep) {
  constexpr std::size_t kDevices = 23;
  constexpr std::size_t kHorizon = 60;
  MarkovMobilityModel model(test_stations(7, 11), 0.6, 3.0);
  const Trace trace = generate_trace(model, kDevices, kHorizon, 42);
  const TraceReplay replay(trace);

  MarkovMobilityModel stream_model(test_stations(7, 11), 0.6, 3.0);
  ModelTraceStream stream(stream_model, kDevices, 42);
  std::vector<std::uint32_t> moved;
  for (std::size_t t = 0; t < kHorizon; ++t) {
    if (t > 0) stream.advance(moved);
    for (std::size_t m = 0; m < kDevices; ++m) {
      ASSERT_EQ(stream.stations()[m], replay.station_of(t, m))
          << "t=" << t << " device=" << m;
    }
  }
}

TEST(ModelTraceStream, MaterialiseReproducesGenerateTraceBitwise) {
  MarkovMobilityModel model_a(test_stations(5, 3), 0.5, 2.0);
  MarkovMobilityModel model_b(test_stations(5, 3), 0.5, 2.0);
  const Trace direct = generate_trace(model_a, 12, 40, 7);
  ModelTraceStream stream(model_b, 12, 7);
  const Trace streamed = materialise_trace(stream, 40);
  ASSERT_EQ(direct.records().size(), streamed.records().size());
  for (std::size_t i = 0; i < direct.records().size(); ++i) {
    EXPECT_EQ(direct.records()[i].device, streamed.records()[i].device);
    EXPECT_EQ(direct.records()[i].station, streamed.records()[i].station);
    EXPECT_EQ(direct.records()[i].t_start, streamed.records()[i].t_start);
    EXPECT_EQ(direct.records()[i].t_end, streamed.records()[i].t_end);
  }
}

TEST(ModelTraceStream, CursorRoundTripContinuesBitwise) {
  MarkovMobilityModel model(test_stations(6, 5), 0.55, 2.5);
  MarkovMobilityModel model_copy(test_stations(6, 5), 0.55, 2.5);
  ModelTraceStream live(model, 15, 9);
  live.seek(17);
  ckpt::ByteWriter cursor;
  live.save_cursor(cursor);

  ModelTraceStream restored(model_copy, 15, 9);
  ckpt::ByteReader in(cursor.data());
  restored.load_cursor(in);
  EXPECT_EQ(restored.t(), 17u);

  std::vector<std::uint32_t> moved_a;
  std::vector<std::uint32_t> moved_b;
  for (int step = 0; step < 25; ++step) {
    live.advance(moved_a);
    restored.advance(moved_b);
    ASSERT_EQ(moved_a, moved_b) << "step " << step;
    for (std::size_t m = 0; m < 15; ++m) {
      ASSERT_EQ(live.stations()[m], restored.stations()[m]);
    }
  }
}

TEST(ReplayTraceStream, MatchesDenseReplayAtEveryStep) {
  HomeBiasedWaypointModel model(test_stations(8, 21), 17, 0.4, 0.3, 3.0, 5);
  const Trace trace = generate_trace(model, 17, 50, 5);
  const TraceReplay dense(trace);
  ReplayTraceStream stream(trace);
  std::vector<std::uint32_t> moved;
  for (std::size_t t = 0; t < 50; ++t) {
    if (t > 0) stream.advance(moved);
    for (std::size_t m = 0; m < 17; ++m) {
      ASSERT_EQ(stream.stations()[m], dense.station_of(t, m))
          << "t=" << t << " device=" << m;
    }
  }
}

TEST(ReplayTraceStream, MovedListsAreAscendingAndExact) {
  MarkovMobilityModel model(test_stations(4, 2), 0.3, 2.0);
  const Trace trace = generate_trace(model, 9, 30, 13);
  const TraceReplay dense(trace);
  ReplayTraceStream stream(trace);
  std::vector<std::uint32_t> moved;
  for (std::size_t t = 1; t < 30; ++t) {
    stream.advance(moved);
    std::vector<std::uint32_t> expected;
    for (std::uint32_t m = 0; m < 9; ++m) {
      if (dense.station_of(t, m) != dense.station_of(t - 1, m)) {
        expected.push_back(m);
      }
    }
    ASSERT_EQ(moved, expected) << "t=" << t;
  }
}

TEST(ReplayTraceStream, ValidatesPartitionLikeDenseReplay) {
  Trace gap(2, 3, 10);
  gap.add_record({0, 1, 0, 10});
  gap.add_record({1, 2, 0, 4});  // device 1 uncovered from t=4
  EXPECT_THROW(ReplayTraceStream{gap}, std::invalid_argument);

  Trace overlap(1, 3, 6);
  overlap.add_record({0, 0, 0, 4});
  overlap.add_record({0, 1, 3, 6});
  EXPECT_THROW(ReplayTraceStream{overlap}, std::invalid_argument);

  Trace ok(1, 3, 6);
  ok.add_record({0, 0, 0, 4});
  ok.add_record({0, 1, 4, 6});
  EXPECT_NO_THROW(ReplayTraceStream{ok});
}

TEST(ReplayTraceStream, CursorRoundTripContinuesBitwise) {
  MarkovMobilityModel model(test_stations(6, 8), 0.5, 2.0);
  const Trace trace = generate_trace(model, 11, 40, 3);
  ReplayTraceStream live(trace);
  live.seek(19);
  ckpt::ByteWriter cursor;
  live.save_cursor(cursor);

  ReplayTraceStream restored(trace);
  ckpt::ByteReader in(cursor.data());
  restored.load_cursor(in);
  EXPECT_EQ(restored.t(), 19u);

  std::vector<std::uint32_t> moved_a;
  std::vector<std::uint32_t> moved_b;
  for (std::size_t t = 20; t < 40; ++t) {
    live.advance(moved_a);
    restored.advance(moved_b);
    ASSERT_EQ(moved_a, moved_b) << "t=" << t;
    for (std::size_t m = 0; m < 11; ++m) {
      ASSERT_EQ(live.stations()[m], restored.stations()[m]);
    }
  }
  EXPECT_THROW(live.advance(moved_a), std::out_of_range);
}

TEST(GridMobilityStream, DeterministicAcrossInstances) {
  const GridMobilityStream::Config config{
      .num_devices = 500, .num_stations = 40, .seed = 77,
      .min_dwell = 2, .max_dwell = 9};
  GridMobilityStream a(config);
  GridMobilityStream b(config);
  std::vector<std::uint32_t> moved_a;
  std::vector<std::uint32_t> moved_b;
  for (int t = 0; t < 60; ++t) {
    ASSERT_TRUE(std::equal(a.stations().begin(), a.stations().end(),
                           b.stations().begin()));
    a.advance(moved_a);
    b.advance(moved_b);
    ASSERT_EQ(moved_a, moved_b);
  }
}

TEST(GridMobilityStream, StepCostIsBoundedByDueDevicesNotPopulation) {
  // With dwell in [4, 12], each step's movers are ~M/8, far below M. The
  // moved list (ascending, station actually changed) can only be smaller.
  const GridMobilityStream::Config config{
      .num_devices = 10000, .num_stations = 100, .seed = 1,
      .min_dwell = 4, .max_dwell = 12};
  GridMobilityStream stream(config);
  std::vector<std::uint32_t> moved;
  std::size_t max_moved = 0;
  for (int t = 0; t < 50; ++t) {
    stream.advance(moved);
    max_moved = std::max(max_moved, moved.size());
    for (std::size_t i = 1; i < moved.size(); ++i) {
      ASSERT_LT(moved[i - 1], moved[i]);
    }
  }
  EXPECT_LT(max_moved, config.num_devices / 2);
  EXPECT_GT(max_moved, 0u);
}

TEST(GridMobilityStream, CursorRoundTripContinuesBitwise) {
  const GridMobilityStream::Config config{
      .num_devices = 300, .num_stations = 25, .seed = 19,
      .min_dwell = 1, .max_dwell = 7};
  GridMobilityStream live(config);
  live.seek(33);
  ckpt::ByteWriter cursor;
  live.save_cursor(cursor);
  // Cursor stays at the fixed per-device budget: t + count + 8B per device.
  EXPECT_EQ(cursor.size(),
            16u + config.num_devices * GridMobilityStream::bytes_per_device());

  GridMobilityStream restored(config);
  ckpt::ByteReader in(cursor.data());
  restored.load_cursor(in);
  EXPECT_EQ(restored.t(), 33u);

  std::vector<std::uint32_t> moved_a;
  std::vector<std::uint32_t> moved_b;
  for (int step = 0; step < 40; ++step) {
    live.advance(moved_a);
    restored.advance(moved_b);
    ASSERT_EQ(moved_a, moved_b) << "step " << step;
    ASSERT_TRUE(std::equal(live.stations().begin(), live.stations().end(),
                           restored.stations().begin()));
  }
}

TEST(GridMobilityStream, RejectsCorruptCursors) {
  const GridMobilityStream::Config config{
      .num_devices = 4, .num_stations = 3, .seed = 2,
      .min_dwell = 1, .max_dwell = 3};
  GridMobilityStream stream(config);
  ckpt::ByteWriter cursor;
  stream.save_cursor(cursor);
  {
    auto bytes = cursor.data();
    bytes[16] = 0xff;  // first station id -> out of range
    GridMobilityStream target(config);
    ckpt::ByteReader in(bytes);
    EXPECT_THROW(target.load_cursor(in), ckpt::CorruptPayload);
  }
  {
    ckpt::ByteWriter truncated;
    truncated.u64(0);
    truncated.u64(99);  // wrong device count
    GridMobilityStream target(config);
    ckpt::ByteReader in(truncated.data());
    EXPECT_THROW(target.load_cursor(in), ckpt::CorruptPayload);
  }
}

TEST(GridMobilityStream, ValidatesConfig) {
  EXPECT_THROW(GridMobilityStream({.num_devices = 0, .num_stations = 3,
                                   .seed = 0, .min_dwell = 1, .max_dwell = 2}),
               std::invalid_argument);
  EXPECT_THROW(GridMobilityStream({.num_devices = 3, .num_stations = 3,
                                   .seed = 0, .min_dwell = 0, .max_dwell = 2}),
               std::invalid_argument);
  EXPECT_THROW(GridMobilityStream({.num_devices = 3, .num_stations = 3,
                                   .seed = 0, .min_dwell = 5, .max_dwell = 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mach::mobility
