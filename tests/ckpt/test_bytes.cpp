// Byte codec + CRC coverage: round-trips for every primitive, bounds-checked
// failure on truncated/hostile payloads, and the RNG codec including the
// Box-Muller cached half-draw.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/bytes.h"
#include "ckpt/crc32.h"
#include "ckpt/rng_codec.h"
#include "common/rng.h"

namespace mach::ckpt {
namespace {

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEF);
  out.u64(0x0123456789ABCDEFULL);
  out.boolean(true);
  out.boolean(false);
  out.f32(-1.5f);
  out.f64(3.141592653589793);
  out.str("hello checkpoint");
  out.blob(std::vector<std::uint8_t>{1, 2, 3});
  out.vec_f32(std::vector<float>{0.5f, -0.25f});
  out.vec_f64(std::vector<double>{1e-300, -1e300});
  out.vec_u64(std::vector<std::uint64_t>{7, 8, 9});

  ByteReader in(out.data());
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.f32(), -1.5f);
  EXPECT_EQ(in.f64(), 3.141592653589793);
  EXPECT_EQ(in.str(), "hello checkpoint");
  EXPECT_EQ(in.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(in.vec_f32(), (std::vector<float>{0.5f, -0.25f}));
  EXPECT_EQ(in.vec_f64(), (std::vector<double>{1e-300, -1e300}));
  EXPECT_EQ(in.vec_u64(), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_TRUE(in.at_end());
}

TEST(ByteCodec, SpecialFloatsKeepTheirBits) {
  ByteWriter out;
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.f64(-0.0);
  out.f64(std::numeric_limits<double>::infinity());
  ByteReader in(out.data());
  EXPECT_TRUE(std::isnan(in.f64()));
  const double neg_zero = in.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(in.f64(), std::numeric_limits<double>::infinity());
}

TEST(ByteCodec, ReadPastEndThrows) {
  ByteWriter out;
  out.u32(1);
  ByteReader in(out.data());
  in.u32();
  EXPECT_THROW(in.u8(), CorruptPayload);
}

TEST(ByteCodec, TruncatedVectorThrows) {
  ByteWriter out;
  out.vec_f64(std::vector<double>{1.0, 2.0, 3.0});
  std::vector<std::uint8_t> bytes = out.data();
  bytes.resize(bytes.size() - 4);  // cut into the last element
  ByteReader in(bytes);
  EXPECT_THROW(in.vec_f64(), CorruptPayload);
}

TEST(ByteCodec, HostileLengthRejectedBeforeAllocation) {
  // A length prefix claiming ~2^61 elements in an 8-byte payload must throw
  // immediately, not attempt a gigantic allocation.
  ByteWriter out;
  out.u64(std::numeric_limits<std::uint64_t>::max() / 8);
  ByteReader in(out.data());
  EXPECT_THROW(in.vec_u64(), CorruptPayload);
}

TEST(ByteCodec, InvalidBooleanTagThrows) {
  const std::vector<std::uint8_t> bytes{2};
  ByteReader in(bytes);
  EXPECT_THROW(in.boolean(), CorruptPayload);
}

TEST(Crc32, MatchesTheReferenceVector) {
  // The canonical CRC-32 (IEEE 802.3) check value for "123456789".
  const std::string data = "123456789";
  const std::vector<std::uint8_t> bytes(data.begin(), data.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
}

TEST(Crc32, DetectsASingleFlippedBit) {
  std::vector<std::uint8_t> bytes(128, 0x41);
  const std::uint32_t clean = crc32(bytes);
  bytes[77] ^= 0x10;
  EXPECT_NE(crc32(bytes), clean);
}

TEST(RngCodec, RoundTripContinuesTheStream) {
  common::Rng rng(314);
  for (int i = 0; i < 9; ++i) rng.uniform();
  rng.normal();  // leaves a cached Box-Muller half pending

  ByteWriter out;
  write_rng(out, rng);
  common::Rng restored(1);
  ByteReader in(out.data());
  read_rng(in, restored);
  EXPECT_TRUE(in.at_end());

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.normal(), restored.normal()) << "diverged at draw " << i;
    EXPECT_EQ(rng.uniform(), restored.uniform());
  }
}

}  // namespace
}  // namespace mach::ckpt
