// The checkpoint subsystem's core promise: a run killed at any snapshot and
// resumed — even at a different thread count, even with fault injection
// active — finishes with byte-identical CSVs, global parameters and
// canonicalised traces vs the same run left uninterrupted. Also covers the
// torn-latest fallback (resume one interval earlier, never crash) and the
// fingerprint guard against resuming a foreign configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/bytes.h"
#include "ckpt/manager.h"
#include "ckpt/run_state.h"
#include "core/registry.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "hfl/trace_canon.h"
#include "obs/jsonl_writer.h"

namespace mach::hfl {
namespace {

namespace fs = std::filesystem;
using mach::test::canonical_trace;
using mach::test::slurp;

ExperimentConfig resume_scenario(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 30;
  config.test_examples = 300;
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 2;
  config.hfl.participation = 0.6;
  config.horizon = 8;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

struct RunOutput {
  std::vector<float> params;
  std::string csv;
  std::vector<std::string> trace;
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

HflOptions options_for(const ExperimentConfig& config, std::size_t threads,
                       const std::string& ckpt_dir, std::size_t every) {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = threads;
  options.checkpoint.dir = ckpt_dir;
  options.checkpoint.every = every;
  return options;
}

std::string csv_of(const MetricsRecorder& metrics, const std::string& tag) {
  const std::string path = testing::TempDir() + tag + ".csv";
  EXPECT_TRUE(metrics.write_csv(path));
  std::string content = slurp(path);
  std::remove(path.c_str());
  return content;
}

/// A full checkpointed run from step 0 (the reference, and also the stand-in
/// for "the run that later gets killed": both are deterministic, so the
/// crashed process's trace prefix and snapshot bytes are exactly these).
RunOutput run_full(const ExperimentArtifacts& built, const ExperimentConfig& config,
                   std::size_t threads, const std::string& ckpt_dir,
                   const std::string& trace_path, std::size_t every) {
  HflSimulator simulator(built.train, built.test, built.partition, built.schedule,
                         make_model_factory(config),
                         options_for(config, threads, ckpt_dir, every));
  RunOutput out;
  {
    obs::JsonlTraceWriter trace(trace_path);
    simulator.set_observer(&trace);
    auto sampler = core::make_sampler("mach");
    const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);
    out.csv = csv_of(metrics, "ckpt_full");
    simulator.set_observer(nullptr);
  }  // writer flushes on destruction, before the slurp below
  out.params = simulator.global_parameters();
  out.trace = canonical_trace(slurp(trace_path));
  return out;
}

/// Continues from the newest valid snapshot in `ckpt_dir` — the CLI resume
/// flow: load, decode the header, truncate-and-append the trace, hand the
/// payload to a fresh simulator.
RunOutput run_resumed(const ExperimentArtifacts& built, const ExperimentConfig& config,
                      std::size_t threads, const std::string& ckpt_dir,
                      const std::string& trace_path, std::size_t every) {
  ckpt::CheckpointManager manager(ckpt_dir);
  auto loaded = manager.load_latest();
  if (!loaded.has_value()) {
    throw std::runtime_error("test: no usable snapshot in " + ckpt_dir);
  }
  ckpt::ByteReader reader(loaded->payload);
  const ckpt::RunStateHeader header = ckpt::RunStateHeader::decode(reader);
  EXPECT_TRUE(header.has_trace_cursor);

  HflSimulator simulator(built.train, built.test, built.partition, built.schedule,
                         make_model_factory(config),
                         options_for(config, threads, ckpt_dir, every));
  RunOutput out;
  {
    const obs::TraceCursor cursor{header.trace_bytes, header.trace_lines};
    obs::JsonlTraceWriter trace(trace_path, cursor);
    simulator.set_observer(&trace);
    simulator.set_resume_payload(loaded->payload);
    auto sampler = core::make_sampler("mach");
    const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);
    out.csv = csv_of(metrics, "ckpt_resumed");
    simulator.set_observer(nullptr);
  }
  out.params = simulator.global_parameters();
  out.trace = canonical_trace(slurp(trace_path));
  return out;
}

/// Simulates the debris a SIGKILLed process leaves in its trace: events
/// emitted after the last durable snapshot, ending mid-line.
void append_crash_debris(const std::string& trace_path) {
  std::ofstream out(trace_path, std::ios::app);
  out << "{\"event\":\"step\",\"t\":999,\"active_edges\":1,\"devices_present\":4}\n";
  out << "{\"event\":\"device\",\"t\":999,\"dev";  // torn final write
}

void expect_same_run(const RunOutput& resumed, const RunOutput& reference) {
  EXPECT_EQ(resumed.params, reference.params);  // bitwise, no tolerance
  EXPECT_EQ(resumed.csv, reference.csv);
  ASSERT_EQ(resumed.trace.size(), reference.trace.size());
  for (std::size_t i = 0; i < reference.trace.size(); ++i) {
    EXPECT_EQ(resumed.trace[i], reference.trace[i]) << "event " << i;
  }
}

TEST(CheckpointResume, ResumedRunMatchesUninterrupted) {
  const ExperimentConfig config = resume_scenario(47);
  const ExperimentArtifacts built = build_experiment(config);
  const std::string ref_dir = fresh_dir("ckpt_ref");
  const std::string ref_trace = testing::TempDir() + "ckpt_ref.jsonl";
  const std::string crash_dir = fresh_dir("ckpt_crash");
  const std::string crash_trace = testing::TempDir() + "ckpt_crash.jsonl";

  const RunOutput reference =
      run_full(built, config, 1, ref_dir, ref_trace, /*every=*/3);
  // The "crashed" run: identical deterministic content; its snapshots and
  // trace prefix are what a SIGKILLed process would have left durable.
  run_full(built, config, 1, crash_dir, crash_trace, /*every=*/3);
  append_crash_debris(crash_trace);

  const RunOutput resumed =
      run_resumed(built, config, 1, crash_dir, crash_trace, /*every=*/3);
  expect_same_run(resumed, reference);

  // The checkpoint markers are part of the determinism contract too: both
  // traces must contain them (snapshots at t=3 and t=6 for horizon 8).
  std::size_t markers = 0;
  for (const auto& event : resumed.trace) {
    if (event.find("\"checkpoint\"") != std::string::npos) ++markers;
  }
  EXPECT_EQ(markers, 2u);

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  std::remove(ref_trace.c_str());
  std::remove(crash_trace.c_str());
}

TEST(CheckpointResume, ResumeAtADifferentThreadCountIsBitwiseIdentical) {
  const ExperimentConfig config = resume_scenario(53);
  const ExperimentArtifacts built = build_experiment(config);
  const std::string ref_dir = fresh_dir("ckpt_threads_ref");
  const std::string ref_trace = testing::TempDir() + "ckpt_threads_ref.jsonl";
  const std::string crash_dir = fresh_dir("ckpt_threads_crash");
  const std::string crash_trace = testing::TempDir() + "ckpt_threads_crash.jsonl";

  // Reference runs serial; the crashed run was serial too; the resumed
  // process comes back with 3 workers.
  const RunOutput reference =
      run_full(built, config, 1, ref_dir, ref_trace, /*every=*/2);
  run_full(built, config, 1, crash_dir, crash_trace, /*every=*/2);
  append_crash_debris(crash_trace);

  const RunOutput resumed =
      run_resumed(built, config, 3, crash_dir, crash_trace, /*every=*/2);
  expect_same_run(resumed, reference);

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  std::remove(ref_trace.c_str());
  std::remove(crash_trace.c_str());
}

TEST(CheckpointResume, ResumeWithActiveFaultInjectionMatches) {
  ExperimentConfig config = resume_scenario(61);
  config.hfl.faults = fault::FaultSchedule::parse(
      "dropout:p=0.25;straggler:p=0.3,delay=1.5,timeout=1,backoff=0.5,"
      "retries=2;edge_outage:edge=0,from=2,to=4;cloud_loss:p=0.3;seed=77");
  const ExperimentArtifacts built = build_experiment(config);
  const std::string ref_dir = fresh_dir("ckpt_faults_ref");
  const std::string ref_trace = testing::TempDir() + "ckpt_faults_ref.jsonl";
  const std::string crash_dir = fresh_dir("ckpt_faults_crash");
  const std::string crash_trace = testing::TempDir() + "ckpt_faults_crash.jsonl";

  const RunOutput reference =
      run_full(built, config, 1, ref_dir, ref_trace, /*every=*/3);
  run_full(built, config, 1, crash_dir, crash_trace, /*every=*/3);
  append_crash_debris(crash_trace);

  const RunOutput resumed =
      run_resumed(built, config, 2, crash_dir, crash_trace, /*every=*/3);
  expect_same_run(resumed, reference);

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  std::remove(ref_trace.c_str());
  std::remove(crash_trace.c_str());
}

TEST(CheckpointResume, TornLatestSnapshotFallsBackOneIntervalAndStillMatches) {
  const ExperimentConfig config = resume_scenario(71);
  const ExperimentArtifacts built = build_experiment(config);
  const std::string ref_dir = fresh_dir("ckpt_torn_ref");
  const std::string ref_trace = testing::TempDir() + "ckpt_torn_ref.jsonl";
  const std::string crash_dir = fresh_dir("ckpt_torn_crash");
  const std::string crash_trace = testing::TempDir() + "ckpt_torn_crash.jsonl";

  const RunOutput reference =
      run_full(built, config, 1, ref_dir, ref_trace, /*every=*/2);
  run_full(built, config, 1, crash_dir, crash_trace, /*every=*/2);
  append_crash_debris(crash_trace);

  // SIGKILL tore the newest snapshot mid-write: resume must degrade to the
  // previous valid one (one interval earlier), never crash.
  ckpt::CheckpointManager manager(crash_dir);
  auto snapshots = manager.list();
  ASSERT_EQ(snapshots.size(), 2u);  // keep=2 of the t=2,4,6 series
  std::error_code ec;
  fs::resize_file(snapshots.back(), 9, ec);
  ASSERT_FALSE(ec);

  const RunOutput resumed =
      run_resumed(built, config, 1, crash_dir, crash_trace, /*every=*/2);
  expect_same_run(resumed, reference);

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
  std::remove(ref_trace.c_str());
  std::remove(crash_trace.c_str());
}

TEST(CheckpointResume, ForeignConfigurationIsRejectedByTheFingerprint) {
  const ExperimentConfig config = resume_scenario(81);
  const ExperimentArtifacts built = build_experiment(config);
  const std::string dir = fresh_dir("ckpt_foreign_cfg");
  const std::string trace_path = testing::TempDir() + "ckpt_foreign_cfg.jsonl";

  run_full(built, config, 1, dir, trace_path, /*every=*/2);

  // Same topology, different seed: the event sequence diverges from step 0,
  // so continuing from this snapshot would be silently wrong. The
  // fingerprint turns it into a hard error.
  ExperimentConfig other = resume_scenario(82);
  EXPECT_THROW(run_resumed(built, other, 1, dir, trace_path, /*every=*/2),
               std::runtime_error);

  fs::remove_all(dir);
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace mach::hfl
