// Checkpoint file-format and directory-manager coverage: atomic write/read
// round-trips, torn-file detection (short header, truncated payload, flipped
// bits vs CRC), keep-K garbage collection and the corrupt-latest fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/file.h"
#include "ckpt/manager.h"

namespace mach::ckpt {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> payload_of(std::initializer_list<std::uint8_t> bytes) {
  return std::vector<std::uint8_t>(bytes);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

/// Overwrites the file with its first `bytes` bytes.
void truncate_file(const std::string& path, std::size_t bytes) {
  std::error_code ec;
  fs::resize_file(path, bytes, ec);
  ASSERT_FALSE(ec) << ec.message();
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(CheckpointFile, RoundTrip) {
  const std::string path = testing::TempDir() + "roundtrip.mach";
  const auto payload = payload_of({1, 2, 3, 4, 5});
  write_checkpoint_file(path, 7, payload);
  std::string error;
  const auto blob = read_checkpoint_file(path, &error);
  ASSERT_TRUE(blob.has_value()) << error;
  EXPECT_EQ(blob->version, 7u);
  EXPECT_EQ(blob->payload, payload);
  std::remove(path.c_str());
}

TEST(CheckpointFile, OverwriteIsAtomicAndKeepsTheNewContent) {
  const std::string path = testing::TempDir() + "overwrite.mach";
  write_checkpoint_file(path, 1, payload_of({1, 1, 1}));
  write_checkpoint_file(path, 2, payload_of({2, 2}));
  const auto blob = read_checkpoint_file(path);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(blob->version, 2u);
  EXPECT_EQ(blob->payload, payload_of({2, 2}));
  // No .tmp siblings survive a successful write.
  for (const auto& entry : fs::directory_iterator(testing::TempDir())) {
    EXPECT_EQ(entry.path().string().find("overwrite.mach.tmp"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileReportsReason) {
  std::string error;
  EXPECT_FALSE(read_checkpoint_file("/no/such/ckpt.mach", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointFile, ShortHeaderReportsReason) {
  const std::string path = testing::TempDir() + "short.mach";
  write_checkpoint_file(path, 1, payload_of({9, 9, 9, 9}));
  truncate_file(path, 10);  // inside the 24-byte header
  std::string error;
  EXPECT_FALSE(read_checkpoint_file(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(CheckpointFile, TruncatedPayloadReportsReason) {
  const std::string path = testing::TempDir() + "torn.mach";
  write_checkpoint_file(path, 1, std::vector<std::uint8_t>(64, 0xEE));
  truncate_file(path, 24 + 32);  // header intact, payload cut in half
  std::string error;
  EXPECT_FALSE(read_checkpoint_file(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(CheckpointFile, BadMagicReportsReason) {
  const std::string path = testing::TempDir() + "magic.mach";
  write_checkpoint_file(path, 1, payload_of({1}));
  flip_byte(path, 2);  // inside the magic
  std::string error;
  EXPECT_FALSE(read_checkpoint_file(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(CheckpointFile, BitFlipInPayloadFailsTheCrc) {
  const std::string path = testing::TempDir() + "bitflip.mach";
  write_checkpoint_file(path, 1, std::vector<std::uint8_t>(48, 0x33));
  flip_byte(path, 24 + 17);
  std::string error;
  EXPECT_FALSE(read_checkpoint_file(path, &error).has_value());
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointManager, EmptyDirIsRejected) {
  EXPECT_THROW(CheckpointManager("", 2), std::invalid_argument);
}

TEST(CheckpointManager, KeepsOnlyTheNewestK) {
  const std::string dir = fresh_dir("ckpt_gc");
  CheckpointManager manager(dir, 2);
  for (std::uint64_t step : {2, 4, 6, 8}) {
    manager.save(step, 1, payload_of({static_cast<std::uint8_t>(step)}));
  }
  const auto snapshots = manager.list();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_NE(snapshots[0].find("000000000006"), std::string::npos);
  EXPECT_NE(snapshots[1].find("000000000008"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CheckpointManager, LoadLatestReturnsTheNewestValidSnapshot) {
  const std::string dir = fresh_dir("ckpt_latest");
  CheckpointManager manager(dir, 3);
  manager.save(3, 1, payload_of({3}));
  manager.save(5, 1, payload_of({5}));
  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 5u);
  EXPECT_EQ(loaded->payload, payload_of({5}));
  fs::remove_all(dir);
}

TEST(CheckpointManager, TornLatestFallsBackToThePreviousSnapshot) {
  const std::string dir = fresh_dir("ckpt_fallback");
  CheckpointManager manager(dir, 3);
  manager.save(3, 1, payload_of({3, 3, 3}));
  manager.save(5, 1, payload_of({5, 5, 5}));
  // Tear the newest file the way SIGKILL mid-write would (partial content).
  const auto snapshots = manager.list();
  ASSERT_EQ(snapshots.size(), 2u);
  truncate_file(snapshots.back(), 12);
  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 3u);
  EXPECT_EQ(loaded->payload, payload_of({3, 3, 3}));
  fs::remove_all(dir);
}

TEST(CheckpointManager, AllSnapshotsCorruptMeansNoResume) {
  const std::string dir = fresh_dir("ckpt_all_bad");
  CheckpointManager manager(dir, 2);
  manager.save(2, 1, payload_of({2, 2}));
  manager.save(4, 1, payload_of({4, 4}));
  for (const auto& path : manager.list()) truncate_file(path, 5);
  EXPECT_FALSE(manager.load_latest().has_value());
  fs::remove_all(dir);
}

TEST(CheckpointManager, ForeignFilesInTheDirAreIgnored) {
  const std::string dir = fresh_dir("ckpt_foreign");
  CheckpointManager manager(dir, 2);
  manager.save(7, 1, payload_of({7}));
  {
    std::ofstream junk(dir + "/notes.txt");
    junk << "not a checkpoint";
    std::ofstream imposter(dir + "/ckpt_xyz.mach");
    imposter << "wrong digits";
  }
  const auto snapshots = manager.list();
  ASSERT_EQ(snapshots.size(), 1u);
  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 7u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mach::ckpt
