// ThreadPool contract tests: static partitioning, exception propagation,
// nested-section rejection and clean shutdown.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mach::runtime {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i, std::size_t) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, HonoursRangeOffset) {
  ThreadPool pool(3);
  std::vector<int> marks(20, 0);
  pool.parallel_for(5, 17, [&](std::size_t i, std::size_t) { marks[i] = 1; });
  for (std::size_t i = 0; i < marks.size(); ++i) {
    EXPECT_EQ(marks[i], (i >= 5 && i < 17) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(3, 3, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SlotAssignmentIsAStaticPartition) {
  // The index→slot mapping must be a pure function of (range, workers):
  // contiguous, non-decreasing, identical across repeated sections. This is
  // the property per-slot model replicas rely on.
  ThreadPool pool(3);
  const std::size_t n = 17;
  std::vector<std::size_t> first(n), second(n);
  pool.parallel_for(0, n, [&](std::size_t i, std::size_t s) { first[i] = s; });
  pool.parallel_for(0, n, [&](std::size_t i, std::size_t s) { second[i] = s; });
  EXPECT_EQ(first, second);
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(first[i - 1], first[i]);
  EXPECT_EQ(first.front(), 0u);
  EXPECT_LT(first.back(), pool.num_workers());
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::size_t> slots(3, 99);
  pool.parallel_for(0, 3, [&](std::size_t i, std::size_t s) { slots[i] = s; });
  // At most one index per slice when items < workers.
  EXPECT_EQ(slots, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [&](std::size_t i, std::size_t) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a throwing section.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i, std::size_t) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, RejectsNestedSections) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 2,
                                 [&](std::size_t, std::size_t) {
                                   pool.parallel_for(
                                       0, 1, [](std::size_t, std::size_t) {});
                                 }),
               std::logic_error);
}

TEST(ThreadPool, RejectsNestedSectionsAcrossPools) {
  // inside_worker() is process-global: a worker of pool A must not block on
  // pool B either (B's workers could be blocked on A in the general case).
  ThreadPool outer(2);
  ThreadPool inner(2);
  EXPECT_THROW(outer.parallel_for(0, 2,
                                  [&](std::size_t, std::size_t) {
                                    inner.parallel_for(
                                        0, 1, [](std::size_t, std::size_t) {});
                                  }),
               std::logic_error);
}

TEST(ThreadPool, InsideWorkerIsFalseOnTheCallingThread) {
  EXPECT_FALSE(ThreadPool::inside_worker());
  ThreadPool pool(1);
  bool inside = false;
  pool.parallel_for(0, 1,
                    [&](std::size_t, std::size_t) { inside = ThreadPool::inside_worker(); });
  EXPECT_TRUE(inside);
  EXPECT_FALSE(ThreadPool::inside_worker());
}

TEST(ThreadPool, ShutdownWithoutWorkIsClean) {
  for (int i = 0; i < 16; ++i) {
    ThreadPool pool(3);  // construct + immediately destroy
  }
}

TEST(ThreadPool, ShutdownAfterSectionsIsClean) {
  for (int i = 0; i < 8; ++i) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(0, 32, [&](std::size_t, std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32);
  }
}

TEST(ThreadPool, ManyBackToBackSections) {
  ThreadPool pool(4);
  std::vector<long> slots(64, 0);
  long expected = 0;
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, slots.size(),
                      [&](std::size_t i, std::size_t) { slots[i] += round; });
    expected += round;
  }
  for (const long v : slots) EXPECT_EQ(v, expected);
}

}  // namespace
}  // namespace mach::runtime
