// Unit tests for the runtime building blocks around the thread pool:
// chunk geometry, per-slot model replicas, the thread-count knob, and the
// now-atomic obs::Counter under concurrent increments.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "nn/dense.h"
#include "nn/model.h"
#include "obs/registry.h"
#include "runtime/chunking.h"
#include "runtime/parallel_config.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_context.h"

namespace mach::runtime {
namespace {

TEST(Chunking, CoversTheRangeWithoutOverlap) {
  const std::size_t total = 103, chunk = 16;
  const std::size_t chunks = num_chunks(total, chunk);
  EXPECT_EQ(chunks, 7u);
  std::size_t expected_begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const ChunkRange range = chunk_range(c, total, chunk);
    EXPECT_EQ(range.begin, expected_begin);
    EXPECT_LE(range.size(), chunk);
    if (c + 1 < chunks) {
      EXPECT_EQ(range.size(), chunk);
    }
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, total);
}

TEST(Chunking, ExactMultipleAndEdgeCases) {
  EXPECT_EQ(num_chunks(64, 16), 4u);
  EXPECT_EQ(num_chunks(0, 16), 0u);
  EXPECT_EQ(num_chunks(5, 0), 0u);
  EXPECT_EQ(num_chunks(1, 16), 1u);
  const ChunkRange last = chunk_range(3, 64, 16);
  EXPECT_EQ(last.begin, 48u);
  EXPECT_EQ(last.end, 64u);
  // Out-of-range chunk index clamps to an empty range at `total`.
  const ChunkRange past = chunk_range(9, 10, 4);
  EXPECT_EQ(past.begin, 10u);
  EXPECT_EQ(past.size(), 0u);
}

TEST(Chunking, FillIotaReusesTheVector) {
  std::vector<std::size_t> indices{99, 99, 99, 99, 99, 99};
  fill_iota(indices, ChunkRange{7, 10});
  EXPECT_EQ(indices, (std::vector<std::size_t>{7, 8, 9}));
  fill_iota(indices, ChunkRange{4, 4});
  EXPECT_TRUE(indices.empty());
}

TEST(ParallelConfig, ResolveThreads) {
  EXPECT_EQ(resolve_threads(ParallelConfig{1}), 1u);
  EXPECT_EQ(resolve_threads(ParallelConfig{6}), 6u);
  const std::size_t hw = resolve_threads(ParallelConfig{0});
  EXPECT_GE(hw, 1u);  // 0 resolves to hardware_concurrency (>= 1 fallback)
}

ModelBuilder tiny_builder() {
  return [] {
    nn::Sequential model;
    model.add(std::make_unique<nn::Dense>(3, 2));
    return model;
  };
}

TEST(ModelReplicaPool, BuildsDistinctReplicas) {
  ModelReplicaPool pool(tiny_builder(), 3);
  EXPECT_EQ(pool.size(), 3u);
  // Distinct objects: writing one slot's parameters must not leak into
  // another slot.
  const std::vector<float> a(pool.model(0).num_parameters(), 1.0f);
  const std::vector<float> b(pool.model(1).num_parameters(), 2.0f);
  pool.model(0).set_parameters(a);
  pool.model(1).set_parameters(b);
  EXPECT_EQ(pool.model(0).get_parameters(), a);
  EXPECT_EQ(pool.model(1).get_parameters(), b);
}

TEST(ModelReplicaPool, SyncedModelThrowsBeforePublish) {
  ModelReplicaPool pool(tiny_builder(), 1);
  EXPECT_THROW(pool.synced_model(0), std::logic_error);
}

TEST(ModelReplicaPool, SyncedModelSeesThePublishedParameters) {
  ModelReplicaPool pool(tiny_builder(), 2);
  const std::size_t n = pool.model(0).num_parameters();
  std::vector<float> first(n, 0.5f);
  pool.publish(&first);
  EXPECT_EQ(pool.synced_model(0).get_parameters(), first);
  EXPECT_EQ(pool.synced_model(1).get_parameters(), first);

  // A new publish() generation must invalidate every slot's cached copy.
  std::vector<float> second(n, -1.25f);
  pool.publish(&second);
  EXPECT_EQ(pool.synced_model(1).get_parameters(), second);
  EXPECT_EQ(pool.synced_model(0).get_parameters(), second);
}

TEST(ModelReplicaPool, SyncIsLazyPerGeneration) {
  ModelReplicaPool pool(tiny_builder(), 1);
  const std::size_t n = pool.model(0).num_parameters();
  std::vector<float> params(n, 3.0f);
  pool.publish(&params);
  (void)pool.synced_model(0);
  // Mutating the replica after the sync and re-requesting the same
  // generation must NOT re-copy: callers within one section rely on a
  // single copy per slot per publish.
  const std::vector<float> scribbled(n, 9.0f);
  pool.model(0).set_parameters(scribbled);
  EXPECT_EQ(pool.synced_model(0).get_parameters(), scribbled);
}

TEST(ModelReplicaPool, ReplicasAreUsableFromWorkers) {
  // The simulator's actual pattern: publish on the coordinator, train each
  // slot's replica inside a section. Slot-distinct access needs no locking.
  ModelReplicaPool replicas(tiny_builder(), 2);
  ThreadPool pool(2);
  const std::size_t n = replicas.model(0).num_parameters();
  std::vector<float> params(n, 0.125f);
  replicas.publish(&params);
  std::vector<std::vector<float>> out(4);
  pool.parallel_for(0, out.size(), [&](std::size_t i, std::size_t slot) {
    out[i] = replicas.synced_model(slot).get_parameters();
  });
  for (const auto& copy : out) EXPECT_EQ(copy, params);
}

TEST(Counter, ConcurrentIncrementsDoNotLoseUpdates) {
  obs::Counter counter;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsThroughThePool) {
  obs::Counter counter;
  ThreadPool pool(4);
  pool.parallel_for(0, 10000, [&](std::size_t, std::size_t) { counter.add(1); });
  EXPECT_EQ(counter.value(), 10000u);
}

}  // namespace
}  // namespace mach::runtime
