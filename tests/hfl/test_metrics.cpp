#include "hfl/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mach::hfl {
namespace {

MetricsRecorder sample_run() {
  MetricsRecorder m;
  m.record({.t = 0, .test_accuracy = 0.1, .test_loss = 2.3});
  m.record({.t = 5, .test_accuracy = 0.4, .test_loss = 1.8});
  m.record({.t = 10, .test_accuracy = 0.7, .test_loss = 1.1});
  m.record({.t = 15, .test_accuracy = 0.65, .test_loss = 1.2});
  m.record({.t = 20, .test_accuracy = 0.8, .test_loss = 0.9});
  return m;
}

TEST(Metrics, EmptyRecorder) {
  MetricsRecorder m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.time_to_accuracy(0.5).has_value());
  EXPECT_DOUBLE_EQ(m.best_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.final_accuracy(), 0.0);
}

TEST(Metrics, TimeToAccuracyFirstCrossing) {
  const MetricsRecorder m = sample_run();
  EXPECT_EQ(m.time_to_accuracy(0.4).value(), 5u);
  EXPECT_EQ(m.time_to_accuracy(0.7).value(), 10u);
  // Non-monotone dip at t=15 must not matter for first crossing of 0.75.
  EXPECT_EQ(m.time_to_accuracy(0.75).value(), 20u);
  EXPECT_FALSE(m.time_to_accuracy(0.95).has_value());
}

TEST(Metrics, BestAndFinal) {
  const MetricsRecorder m = sample_run();
  EXPECT_DOUBLE_EQ(m.best_accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(m.final_accuracy(), 0.8);
}

TEST(Metrics, CsvWrite) {
  const MetricsRecorder m = sample_run();
  const std::string path = testing::TempDir() + "metrics.csv";
  ASSERT_TRUE(m.write_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "t,test_accuracy,test_loss,train_loss,participants,"
            "global_grad_sq_norm");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 5u);
  std::remove(path.c_str());
}

TEST(Metrics, CsvWriteBadPathFails) {
  const MetricsRecorder m = sample_run();
  EXPECT_FALSE(m.write_csv("/no/such/dir/metrics.csv"));
}

}  // namespace
}  // namespace mach::hfl
