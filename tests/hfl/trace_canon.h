// Shared trace-canonicalisation helpers for determinism/regression suites.
//
// JSONL traces carry wall-clock fields that legitimately differ between
// runs; everything else is part of the engine's determinism contract. These
// helpers re-serialise each trace line with object keys sorted and the
// timing fields dropped, so two traces compare equal iff their deterministic
// content matches — used by the parallel-determinism suite, the
// fault-injection determinism/replay suites and the golden-trace regression.
#pragma once

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace mach::test {

inline bool is_timing_key(const std::string& key) {
  // Wall-clock fields: legitimately different between runs.
  return key == "seconds" || key == "sampler_seconds" ||
         key == "train_seconds" || key == "aggregate_seconds" ||
         key == "phases" || key == "phase_total_s";
}

inline std::string canonical(const obs::JsonValue& value);

inline std::string canonical_object(const obs::JsonValue::Object& object) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, member] : object) {
    if (is_timing_key(key)) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + obs::json_escape(key) + "\":" + canonical(member);
  }
  return out + "}";
}

inline std::string canonical(const obs::JsonValue& value) {
  switch (value.kind()) {
    case obs::JsonValue::Kind::Null:
      return "null";
    case obs::JsonValue::Kind::Bool:
      return value.as_bool() ? "true" : "false";
    case obs::JsonValue::Kind::Number:
      return obs::json_number(value.as_number());
    case obs::JsonValue::Kind::String:
      return '"' + obs::json_escape(value.as_string()) + '"';
    case obs::JsonValue::Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < value.as_array().size(); ++i) {
        if (i != 0) out += ',';
        out += canonical(value.as_array()[i]);
      }
      return out + "]";
    }
    case obs::JsonValue::Kind::Object:
      return canonical_object(value.as_object());
  }
  return "null";
}

/// One canonical string per JSONL line (empty lines skipped). Parse failures
/// flag a test failure and drop the line.
inline std::vector<std::string> canonical_trace(const std::string& jsonl) {
  std::vector<std::string> events;
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string error;
    const auto parsed = obs::parse_json(line, &error);
    EXPECT_TRUE(parsed.has_value()) << error << " in: " << line;
    if (parsed) events.push_back(canonical(*parsed));
  }
  return events;
}

inline std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace mach::test
