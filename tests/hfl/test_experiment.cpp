#include "hfl/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/registry.h"
#include "data/partition.h"

namespace mach::hfl {
namespace {

ExperimentConfig tiny(std::uint64_t seed = 1) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 10;
  config.num_edges = 2;
  config.train_per_device = 25;
  config.test_examples = 100;
  config.mlp_hidden = 12;
  config.hfl.local_epochs = 2;
  config.horizon = 20;
  config.num_stations = 8;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

TEST(ExperimentConfig, SmokePresetsPerTask) {
  const auto mnist = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  EXPECT_EQ(mnist.hfl.cloud_interval, 5u);
  const auto fmnist = ExperimentConfig::smoke(data::TaskKind::FmnistLike);
  // Easier tiers must carry higher accuracy targets.
  EXPECT_GT(mnist.target_accuracy, fmnist.target_accuracy);
  const auto cifar = ExperimentConfig::smoke(data::TaskKind::CifarLike);
  EXPECT_GT(fmnist.target_accuracy, cifar.target_accuracy);
  EXPECT_EQ(cifar.hfl.cloud_interval, 10u);
  EXPECT_EQ(cifar.data_spec.channels, 3u);
}

TEST(ExperimentConfig, FullPresetsUsePaperScale) {
  const auto full = ExperimentConfig::full(data::TaskKind::MnistLike);
  EXPECT_EQ(full.num_devices, 100u);
  EXPECT_EQ(full.num_edges, 10u);
  EXPECT_EQ(full.hfl.local_epochs, 10u);
  EXPECT_EQ(full.model, ModelKind::PaperCnn);
}

TEST(ExperimentConfig, PresetFollowsEnvFlag) {
  ::unsetenv("REPRO_FULL");
  EXPECT_EQ(ExperimentConfig::preset(data::TaskKind::MnistLike).model, ModelKind::Mlp);
  ::setenv("REPRO_FULL", "1", 1);
  EXPECT_EQ(ExperimentConfig::preset(data::TaskKind::MnistLike).model,
            ModelKind::PaperCnn);
  ::unsetenv("REPRO_FULL");
}

TEST(ExperimentConfig, WithSeedPropagates) {
  const auto config = tiny().with_seed(99);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.hfl.seed, 99u);
}

TEST(BuildExperiment, ShapesMatchConfig) {
  auto config = tiny(2);
  config.redundant_fraction = 0.0;  // duplicates off: partition must be exact
  const ExperimentArtifacts artifacts = build_experiment(config);
  EXPECT_EQ(artifacts.train.size(), 250u);
  EXPECT_EQ(artifacts.test.size(), 100u);
  EXPECT_EQ(artifacts.partition.size(), 10u);
  EXPECT_TRUE(data::is_exact_partition(artifacts.partition, artifacts.train.size()));
  EXPECT_EQ(artifacts.schedule.num_devices(), 10u);
  EXPECT_EQ(artifacts.schedule.num_edges(), 2u);
  EXPECT_EQ(artifacts.schedule.horizon(), config.horizon);
}

TEST(BuildExperiment, RedundancyKeepsIndicesValidAndSizes) {
  auto config = tiny(2);
  config.redundant_fraction = 1.0;  // every device collapsed
  const ExperimentArtifacts artifacts = build_experiment(config);
  for (const auto& shard : artifacts.partition) {
    ASSERT_FALSE(shard.empty());
    std::set<std::size_t> unique(shard.begin(), shard.end());
    // keep = 0.08 of 25 examples -> 2 unique indices per device.
    EXPECT_LE(unique.size(), 2u);
    for (auto idx : shard) EXPECT_LT(idx, artifacts.train.size());
  }
}

TEST(BuildExperiment, DeterministicForSeed) {
  const auto config = tiny(3);
  const auto a = build_experiment(config);
  const auto b = build_experiment(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.features().numel(); ++i) {
    ASSERT_EQ(a.train.features()[i], b.train.features()[i]);
  }
  for (std::size_t t = 0; t < config.horizon; ++t) {
    for (std::size_t m = 0; m < 10; ++m) {
      ASSERT_EQ(a.schedule.edge_of(t, m), b.schedule.edge_of(t, m));
    }
  }
}

TEST(BuildExperiment, DataSeedChangesDataRunSeedDoesNot) {
  // Changing only the run seed must keep the world identical (the paper
  // repeats runs over fixed datasets and traces)...
  const auto a = build_experiment(tiny(4));
  const auto b = build_experiment(tiny(5));
  ASSERT_EQ(a.train.features().numel(), b.train.features().numel());
  for (std::size_t i = 0; i < a.train.features().numel(); ++i) {
    ASSERT_EQ(a.train.features()[i], b.train.features()[i]);
  }
  // ...while changing the data seed regenerates the concept.
  auto config = tiny(4);
  config.data_seed = 777;
  const auto c = build_experiment(config);
  bool differs = false;
  for (std::size_t i = 0; i < a.train.features().numel() && !differs; ++i) {
    differs = a.train.features()[i] != c.train.features()[i];
  }
  EXPECT_TRUE(differs);
}

TEST(ModelFactoryTest, MlpHandlesImageInput) {
  const auto config = tiny(6);
  auto factory = make_model_factory(config);
  nn::Sequential model = factory();
  common::Rng rng(1);
  model.init_params(rng);
  tensor::Tensor x({2, config.data_spec.channels, config.data_spec.height,
                    config.data_spec.width});
  EXPECT_EQ(model.forward(x).shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(ModelFactoryTest, PaperCnnSelectsDepthByTask) {
  auto config = tiny(7);
  config.model = ModelKind::PaperCnn;
  nn::Sequential cnn2 = make_model_factory(config)();
  EXPECT_EQ(cnn2.num_layers(), 10u);  // conv relu pool x2 + flatten fc relu fc

  auto cifar = ExperimentConfig::smoke(data::TaskKind::CifarLike);
  cifar.model = ModelKind::PaperCnn;
  nn::Sequential cnn3 = make_model_factory(cifar)();
  EXPECT_EQ(cnn3.num_layers(), 13u);  // conv relu pool x3 + flatten fc relu fc
}

TEST(RunExperiment, ProducesMetricsAndName) {
  const auto config = tiny(8);
  auto sampler = core::make_sampler("uniform");
  const RunResult result = run_experiment(config, *sampler);
  EXPECT_EQ(result.sampler_name, "uniform");
  EXPECT_FALSE(result.metrics.empty());
}

TEST(AveragedTimeToTarget, UnreachableTargetCountsHorizon) {
  auto config = tiny(9);
  config.target_accuracy = 1.01;  // impossible
  const std::vector<std::uint64_t> seeds = {1, 2};
  const auto result = averaged_time_to_target(
      config, [] { return core::make_sampler("uniform"); }, seeds);
  EXPECT_DOUBLE_EQ(result.mean_steps, static_cast<double>(config.horizon));
  EXPECT_DOUBLE_EQ(result.reach_rate, 0.0);
  ASSERT_EQ(result.per_seed.size(), 2u);
  EXPECT_FALSE(result.per_seed[0].has_value());
}

TEST(AveragedTimeToTarget, TrivialTargetReachedImmediately) {
  auto config = tiny(10);
  config.target_accuracy = 0.0;  // initial eval already satisfies it
  const std::vector<std::uint64_t> seeds = {3};
  const auto result = averaged_time_to_target(
      config, [] { return core::make_sampler("uniform"); }, seeds);
  EXPECT_DOUBLE_EQ(result.mean_steps, 0.0);
  EXPECT_DOUBLE_EQ(result.reach_rate, 1.0);
}

TEST(AveragedTimeToTarget, EmptySeeds) {
  const auto result = averaged_time_to_target(
      tiny(11), [] { return core::make_sampler("uniform"); }, {});
  EXPECT_DOUBLE_EQ(result.mean_steps, 0.0);
  EXPECT_TRUE(result.per_seed.empty());
}

TEST(AverageCurves, PointwiseMean) {
  MetricsRecorder a, b;
  a.record({.t = 0, .test_accuracy = 0.2, .test_loss = 2.0});
  a.record({.t = 5, .test_accuracy = 0.6, .test_loss = 1.0});
  b.record({.t = 0, .test_accuracy = 0.4, .test_loss = 1.0});
  b.record({.t = 5, .test_accuracy = 0.8, .test_loss = 0.5});
  const auto curve = average_curves({a, b});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].test_accuracy, 0.3);
  EXPECT_DOUBLE_EQ(curve[1].test_accuracy, 0.7);
  EXPECT_DOUBLE_EQ(curve[1].test_loss, 0.75);
  EXPECT_EQ(curve[1].t, 5u);
}

TEST(AverageCurves, TruncatesToShortestRun) {
  MetricsRecorder a, b;
  a.record({.t = 0, .test_accuracy = 0.2});
  a.record({.t = 5, .test_accuracy = 0.6});
  b.record({.t = 0, .test_accuracy = 0.4});
  const auto curve = average_curves({a, b});
  EXPECT_EQ(curve.size(), 1u);
}

TEST(CurveTimeToTarget, FirstCrossing) {
  std::vector<EvalPoint> curve = {{.t = 0, .test_accuracy = 0.1},
                                  {.t = 5, .test_accuracy = 0.5},
                                  {.t = 10, .test_accuracy = 0.9}};
  EXPECT_EQ(curve_time_to_target(curve, 0.5).value(), 5u);
  EXPECT_EQ(curve_time_to_target(curve, 0.89).value(), 10u);
  EXPECT_FALSE(curve_time_to_target(curve, 0.95).has_value());
}

}  // namespace
}  // namespace mach::hfl
