// Communication-cost accounting and confusion-matrix evaluation.
#include <gtest/gtest.h>

#include "core/mach.h"
#include "hfl/experiment.h"
#include "hfl/simulator.h"
#include "sampling/baselines.h"

namespace mach::hfl {
namespace {

ExperimentConfig tiny_config(std::uint64_t seed = 1) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 20;
  config.test_examples = 120;
  config.mlp_hidden = 12;
  config.hfl.local_epochs = 2;
  config.hfl.cloud_interval = 5;
  config.horizon = 20;
  config.num_stations = 8;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

TEST(CommunicationCost, ArithmeticHelpers) {
  CommunicationCost cost;
  cost.device_downloads = 10;
  cost.device_uploads = 10;
  cost.edge_uploads = 4;
  cost.cloud_broadcasts = 4;
  cost.probe_downloads = 2;
  cost.model_parameters = 100;
  EXPECT_EQ(cost.total_model_messages(), 30u);
  EXPECT_EQ(cost.total_bytes(), 30u * 100u * sizeof(float));
  EXPECT_DOUBLE_EQ(cost.device_messages_per_step(10), 2.0);
  EXPECT_DOUBLE_EQ(cost.device_messages_per_step(0), 0.0);

  CommunicationCost other;
  other.device_downloads = 5;
  cost += other;
  EXPECT_EQ(cost.device_downloads, 15u);
  // Accumulating into `cost` must not lose its per-message size either.
  EXPECT_EQ(cost.model_parameters, 100u);
}

TEST(CommunicationCost, AccumulationKeepsModelParameters) {
  // Regression: += used to drop model_parameters, so folding a populated
  // cost into a default-constructed accumulator reported total_bytes() == 0.
  CommunicationCost run;
  run.device_downloads = 10;
  run.device_uploads = 10;
  run.model_parameters = 256;

  CommunicationCost accumulated;
  accumulated += run;
  EXPECT_EQ(accumulated.model_parameters, 256u);
  EXPECT_EQ(accumulated.total_bytes(), 20u * 256u * sizeof(float));

  // A second run of the same model keeps the size and the clean flag.
  CommunicationCost same;
  same.model_parameters = 256;
  accumulated += same;
  EXPECT_EQ(accumulated.model_parameters, 256u);
  EXPECT_FALSE(accumulated.mixed_model_sizes);
}

TEST(CommunicationCost, MixedModelSizesAssertAndSetTheStickyFlag) {
  // Folding two accumulators with different nonzero model sizes makes the
  // fp32 product meaningless: the engine asserts in debug builds (asserts
  // are live in this repo's Release flags too) and records the mix in a
  // sticky flag that trace_summary surfaces.
  CommunicationCost a;
  a.model_parameters = 256;
  CommunicationCost b;
  b.model_parameters = 512;
  EXPECT_DEBUG_DEATH(a += b, "mixed model sizes");

  // With NDEBUG (or after surviving the death-test fork) the fold must keep
  // max() as a lower bound and leave the sticky flag set, and the flag must
  // stay sticky through further clean accumulations.
  CommunicationCost mixed;
  mixed.model_parameters = 256;
  mixed.mixed_model_sizes = true;  // as a surviving NDEBUG fold would leave it
  CommunicationCost more;
  more.model_parameters = 256;
  more.device_uploads = 3;
  mixed += more;
  EXPECT_TRUE(mixed.mixed_model_sizes);
  EXPECT_EQ(mixed.model_parameters, 256u);

  // The flag also propagates from the right-hand side.
  CommunicationCost clean;
  clean.model_parameters = 256;
  clean += mixed;
  EXPECT_TRUE(clean.mixed_model_sizes);
}

TEST(CommunicationCost, FullParticipationCountsExactly) {
  const auto config = tiny_config(2);
  auto artifacts = build_experiment(config);
  HflOptions options = config.hfl;
  options.seed = config.seed;
  HflSimulator sim(artifacts.train, artifacts.test, artifacts.partition,
                   artifacts.schedule, make_model_factory(config), options);
  sampling::FullParticipationSampler sampler;
  sim.run(sampler, 20);
  const auto& cost = sim.last_run_cost();
  // Every device participates every step.
  EXPECT_EQ(cost.device_downloads, 8u * 20u);
  EXPECT_EQ(cost.device_uploads, 8u * 20u);
  EXPECT_EQ(cost.probe_downloads, 0u);
  // Cloud rounds at t = 0, 5, 10, 15 -> 4 rounds x 2 edges each direction.
  EXPECT_EQ(cost.edge_uploads, 8u);
  EXPECT_EQ(cost.cloud_broadcasts, 8u);
  EXPECT_GT(cost.model_parameters, 0u);
}

TEST(CommunicationCost, SamplingRespectsExpectedBudget) {
  const auto config = tiny_config(3);
  auto artifacts = build_experiment(config);
  HflOptions options = config.hfl;
  options.seed = config.seed;
  HflSimulator sim(artifacts.train, artifacts.test, artifacts.partition,
                   artifacts.schedule, make_model_factory(config), options);
  sampling::UniformSampler sampler;
  sim.run(sampler, 20);
  const auto& cost = sim.last_run_cost();
  // Expected participants per step = participation * devices = 4; allow
  // generous Monte-Carlo slack around 4 * 20 = 80.
  EXPECT_GT(cost.device_uploads, 40u);
  EXPECT_LT(cost.device_uploads, 120u);
  EXPECT_EQ(cost.device_uploads, cost.device_downloads);
}

TEST(CommunicationCost, OracleProbesAreCounted) {
  const auto config = tiny_config(4);
  auto artifacts = build_experiment(config);
  HflOptions options = config.hfl;
  options.seed = config.seed;
  HflSimulator sim(artifacts.train, artifacts.test, artifacts.partition,
                   artifacts.schedule, make_model_factory(config), options);
  core::MachOracleSampler sampler;
  sim.run(sampler, 20);
  // Every device in every edge is probed at every step.
  EXPECT_EQ(sim.last_run_cost().probe_downloads, 8u * 20u);
}

TEST(Confusion, BasicCounting) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 1);
  m.add(1, 1);
  m.add(2, 2);
  EXPECT_EQ(m.total(), 4u);
  EXPECT_EQ(m.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(m.recall(0), 0.5);
  EXPECT_DOUBLE_EQ(m.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(1), 0.5);
  EXPECT_NEAR(m.balanced_accuracy(), (0.5 + 1.0 + 1.0) / 3.0, 1e-12);
}

TEST(Confusion, Validation) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  ConfusionMatrix m(2);
  EXPECT_THROW(m.add(2, 0), std::out_of_range);
  EXPECT_THROW(m.add(0, -1), std::out_of_range);
  EXPECT_THROW(m.count(2, 0), std::out_of_range);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);   // empty
  EXPECT_DOUBLE_EQ(m.recall(0), 0.0);    // no examples
  EXPECT_DOUBLE_EQ(m.precision(0), 0.0); // nothing predicted
}

TEST(Confusion, SimulatorEvaluationMatchesEvalAccuracy) {
  const auto config = tiny_config(5);
  auto artifacts = build_experiment(config);
  HflOptions options = config.hfl;
  options.seed = config.seed;
  HflSimulator sim(artifacts.train, artifacts.test, artifacts.partition,
                   artifacts.schedule, make_model_factory(config), options);
  sampling::UniformSampler sampler;
  sim.run(sampler, 10);
  const EvalPoint point = sim.evaluate_global(10);
  const ConfusionMatrix confusion = sim.evaluate_confusion();
  EXPECT_EQ(confusion.total(), 120u);
  EXPECT_NEAR(confusion.accuracy(), point.test_accuracy, 1e-9);
}

}  // namespace
}  // namespace mach::hfl
