// The runtime subsystem's core promise: a run is bitwise identical at any
// thread count. Replays the fig3-style 2-edge/8-device scenario serially
// and with 2 and 4 workers and asserts equal global parameters, metrics
// CSVs, confusion matrices and JSONL trace event sequences (timing fields
// stripped — wall-clock is the only thing allowed to differ).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "hfl/experiment.h"
#include "hfl/trace_canon.h"
#include "obs/jsonl_writer.h"

namespace mach::hfl {
namespace {

ExperimentConfig parallel_scenario(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 30;
  // > 256 test examples so the chunked evaluation paths actually shard
  // across workers (kEvalChunk = 256).
  config.test_examples = 300;
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 2;
  config.hfl.participation = 0.6;
  config.horizon = 8;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

// Canonicalisation (sorted keys, timing fields dropped) lives in
// tests/hfl/trace_canon.h, shared with the fault and golden-trace suites.
using mach::test::canonical_trace;
using mach::test::slurp;

struct RunArtifacts {
  std::vector<float> params;
  std::string csv;
  std::vector<std::string> trace;
  std::vector<std::size_t> confusion;
};

RunArtifacts run_with_threads(const ExperimentArtifacts& artifacts,
                              const ExperimentConfig& config,
                              std::size_t threads) {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = threads;
  HflSimulator simulator(artifacts.train, artifacts.test, artifacts.partition,
                         artifacts.schedule, make_model_factory(config),
                         options);

  std::ostringstream trace_stream;
  obs::JsonlTraceOptions trace_options;
  trace_options.device_events = true;
  obs::JsonlTraceWriter trace(trace_stream, trace_options);
  simulator.set_observer(&trace);

  auto sampler = core::make_sampler("mach");
  const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);

  RunArtifacts result;
  result.params = simulator.global_parameters();

  const std::string csv_path =
      ::testing::TempDir() + "parallel_determinism_" + std::to_string(threads) +
      ".csv";
  EXPECT_TRUE(metrics.write_csv(csv_path));
  result.csv = slurp(csv_path);
  std::remove(csv_path.c_str());

  const ConfusionMatrix confusion = simulator.evaluate_confusion();
  for (std::size_t t = 0; t < confusion.num_classes(); ++t) {
    for (std::size_t p = 0; p < confusion.num_classes(); ++p) {
      result.confusion.push_back(confusion.count(t, p));
    }
  }

  simulator.set_observer(nullptr);  // flush order: trace dies before simulator
  result.trace = canonical_trace(trace_stream.str());
  return result;
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeTheRun) {
  const ExperimentConfig config = parallel_scenario(47);
  const ExperimentArtifacts artifacts = build_experiment(config);

  const RunArtifacts serial = run_with_threads(artifacts, config, 1);
  ASSERT_FALSE(serial.params.empty());
  ASSERT_FALSE(serial.csv.empty());
  ASSERT_GE(serial.trace.size(), 4u);  // run_begin, steps, ..., run_end

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunArtifacts parallel = run_with_threads(artifacts, config, threads);
    // Bitwise: float vectors compared element-exact, no tolerance.
    EXPECT_EQ(parallel.params, serial.params);
    EXPECT_EQ(parallel.csv, serial.csv);
    EXPECT_EQ(parallel.confusion, serial.confusion);
    ASSERT_EQ(parallel.trace.size(), serial.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(parallel.trace[i], serial.trace[i]) << "event " << i;
    }
  }
}

TEST(ParallelDeterminism, RunExperimentHonoursTheThreadKnob) {
  // The high-level driver path (used by benches and the CLI) must inherit
  // the same guarantee end to end.
  ExperimentConfig config = parallel_scenario(48);
  config.horizon = 5;

  auto run_with = [&](std::size_t threads) {
    ExperimentConfig c = config;
    c.hfl.parallel.threads = threads;
    auto sampler = core::make_sampler("uniform");
    return run_experiment(c, *sampler);
  };

  const RunResult serial = run_with(1);
  const RunResult threaded = run_with(3);
  ASSERT_EQ(serial.metrics.points().size(), threaded.metrics.points().size());
  for (std::size_t i = 0; i < serial.metrics.points().size(); ++i) {
    const EvalPoint& a = serial.metrics.points()[i];
    const EvalPoint& b = threaded.metrics.points()[i];
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);
    EXPECT_EQ(a.test_loss, b.test_loss);
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.participants, b.participants);
  }
}

}  // namespace
}  // namespace mach::hfl
