// Golden-trace regression test: a fixed-seed smoke run's metrics CSV and
// canonicalised JSONL trace are pinned byte-for-byte under tests/hfl/golden/.
// Any drift — a reordered field, a renamed counter, a changed default, a
// float produced by a different op sequence — fails with a diff-sized hint.
//
// Two runs are pinned: a fault-free baseline (guards the core engine and the
// all-zero bitwise-identity contract) and a faulted run (guards the fault
// JSONL schema and the realised fault history of the pinned schedule).
//
// To regenerate after an *intentional* change:
//   MACH_UPDATE_GOLDEN=1 ./test_hfl --gtest_filter='GoldenTrace.*'
// then commit the rewritten files alongside the change that justified them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/registry.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "hfl/trace_canon.h"
#include "obs/jsonl_writer.h"

#ifndef MACH_GOLDEN_DIR
#error "MACH_GOLDEN_DIR must point at tests/hfl/golden"
#endif

namespace mach::hfl {
namespace {

using mach::test::canonical_trace;
using mach::test::slurp;

ExperimentConfig golden_scenario() {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 24;
  config.test_examples = 120;
  config.mlp_hidden = 12;
  config.hfl.local_epochs = 1;
  config.hfl.participation = 0.6;
  config.horizon = 6;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(1234);
}

struct GoldenArtifacts {
  std::string csv;
  std::string trace;  // canonicalised, newline-terminated
};

GoldenArtifacts run_scenario(const fault::FaultSchedule& faults,
                             const std::string& sampler_name = "mach") {
  const ExperimentConfig config = golden_scenario();
  const ExperimentArtifacts artifacts = build_experiment(config);

  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = 1;
  options.faults = faults;
  HflSimulator simulator(artifacts.train, artifacts.test, artifacts.partition,
                         artifacts.schedule, make_model_factory(config),
                         options);

  std::ostringstream trace_stream;
  obs::JsonlTraceOptions trace_options;
  trace_options.device_events = true;
  obs::JsonlTraceWriter trace(trace_stream, trace_options);
  simulator.set_observer(&trace);
  auto sampler = core::make_sampler(sampler_name);
  const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);
  simulator.set_observer(nullptr);

  GoldenArtifacts result;
  // Unique per run: ctest executes the golden tests as concurrent processes
  // and a shared scratch name races (write/read/remove on the same file).
  const std::string csv_path = ::testing::TempDir() + "golden_scratch_" +
                               sampler_name + "_" +
                               std::to_string(::getpid()) + ".csv";
  EXPECT_TRUE(metrics.write_csv(csv_path));
  result.csv = slurp(csv_path);
  std::remove(csv_path.c_str());

  std::string canon;
  for (const std::string& event : canonical_trace(trace_stream.str())) {
    canon += event;
    canon += '\n';
  }
  result.trace = std::move(canon);
  return result;
}

bool updating_golden() {
  const char* flag = std::getenv("MACH_UPDATE_GOLDEN");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

void check_or_update(const std::string& name, const std::string& actual) {
  const std::string path = std::string(MACH_GOLDEN_DIR) + "/" + name;
  if (updating_golden()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good());
    std::cout << "[golden] rewrote " << path << " (" << actual.size()
              << " bytes)\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path << " missing — run with MACH_UPDATE_GOLDEN=1 once "
                  << "and commit the generated files";
  std::ostringstream expected;
  expected << in.rdbuf();
  const std::string want = expected.str();
  if (actual == want) return;
  // Byte-level drift: locate the first divergence for a useful message.
  std::size_t at = 0;
  while (at < actual.size() && at < want.size() && actual[at] == want[at]) ++at;
  const auto context = [&](const std::string& text) {
    const std::size_t from = at > 40 ? at - 40 : 0;
    return text.substr(from, 80);
  };
  FAIL() << name << " drifted at byte " << at << " (golden " << want.size()
         << " bytes, actual " << actual.size() << " bytes)\n  golden:  ..."
         << context(want) << "...\n  actual:  ..." << context(actual)
         << "...\nIf the change is intentional, regenerate with "
         << "MACH_UPDATE_GOLDEN=1 and commit the diff.";
}

TEST(GoldenTrace, BaselineRunMatchesPinnedArtifacts) {
  const GoldenArtifacts run = run_scenario(fault::FaultSchedule{});
  ASSERT_FALSE(run.csv.empty());
  ASSERT_FALSE(run.trace.empty());
  check_or_update("baseline_metrics.csv", run.csv);
  check_or_update("baseline_trace.jsonl", run.trace);
}

// Each cross-paper zoo sampler (sampling/zoo.h) gets its own pinned run on
// the same tiny scenario: the goldens freeze not just the engine but each
// algorithm's exact probability stream — a silently changed weight formula
// shows up as a byte diff here before it shows up as a bench regression.
class GoldenZooSampler : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenZooSampler, RunMatchesPinnedArtifacts) {
  const std::string name = GetParam();
  const GoldenArtifacts run = run_scenario(fault::FaultSchedule{}, name);
  ASSERT_FALSE(run.csv.empty());
  ASSERT_FALSE(run.trace.empty());
  check_or_update("zoo_" + name + "_metrics.csv", run.csv);
  check_or_update("zoo_" + name + "_trace.jsonl", run.trace);
}

INSTANTIATE_TEST_SUITE_P(
    ZooSamplers, GoldenZooSampler,
    ::testing::Values("mobility_cluster", "emd", "churn_aware"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(GoldenTrace, FaultedRunMatchesPinnedArtifacts) {
  const fault::FaultSchedule schedule = fault::FaultSchedule::parse(
      "dropout:p=0.25;straggler:p=0.3,delay=1.5,timeout=1,backoff=0.5,"
      "retries=2;edge_outage:edge=0,from=2,to=3;cloud_loss:p=0.25;seed=99");
  const GoldenArtifacts run = run_scenario(schedule);
  ASSERT_NE(run.trace.find("\"faults\""), std::string::npos)
      << "pinned schedule never fired";
  check_or_update("faulted_metrics.csv", run.csv);
  check_or_update("faulted_trace.jsonl", run.trace);
}

}  // namespace
}  // namespace mach::hfl
