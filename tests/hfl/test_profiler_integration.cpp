// Profiler passivity contract: turning --profile/--status on must not change
// the simulation. Replays one scenario with profiling off and on across
// thread counts and asserts bitwise-equal global parameters plus identical
// canonical JSONL traces, then checks the exported Chrome trace actually
// covers every round and phase and the heartbeat reached its final state.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "hfl/experiment.h"
#include "hfl/trace_canon.h"
#include "obs/json.h"
#include "obs/jsonl_writer.h"

namespace mach::hfl {
namespace {

using mach::test::canonical_trace;
using mach::test::slurp;

ExperimentConfig profiled_scenario(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 30;
  config.test_examples = 300;  // > kEvalChunk so eval shards across workers
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 2;
  config.hfl.participation = 0.6;
  config.horizon = 8;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

struct ProfiledRun {
  std::vector<float> params;
  std::vector<std::string> trace;
};

ProfiledRun run_scenario(const ExperimentArtifacts& artifacts,
                         const ExperimentConfig& config, std::size_t threads,
                         const obs::ProfileOptions& profile,
                         bool* profiler_active = nullptr) {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = threads;
  options.profile = profile;
  HflSimulator simulator(artifacts.train, artifacts.test, artifacts.partition,
                         artifacts.schedule, make_model_factory(config),
                         options);

  std::ostringstream trace_stream;
  obs::JsonlTraceOptions trace_options;
  trace_options.device_events = true;
  obs::JsonlTraceWriter trace(trace_stream, trace_options);
  simulator.set_observer(&trace);

  auto sampler = core::make_sampler("mach");
  simulator.run(*sampler, config.horizon);
  if (profiler_active != nullptr) {
    *profiler_active = simulator.span_profiler() != nullptr;
  }

  ProfiledRun result;
  result.params = simulator.global_parameters();
  simulator.set_observer(nullptr);
  result.trace = canonical_trace(trace_stream.str());
  return result;
}

TEST(ProfilerIntegration, ProfilingOffLeavesTheProfilerUnbuilt) {
  const ExperimentConfig config = profiled_scenario(51);
  const ExperimentArtifacts artifacts = build_experiment(config);
  bool active = true;
  run_scenario(artifacts, config, 1, obs::ProfileOptions{}, &active);
  EXPECT_FALSE(active) << "spans-off runs must not even allocate a profiler";
}

TEST(ProfilerIntegration, ProfilingOnIsPassiveAtEveryThreadCount) {
  const ExperimentConfig config = profiled_scenario(52);
  const ExperimentArtifacts artifacts = build_experiment(config);

  const ProfiledRun reference =
      run_scenario(artifacts, config, 1, obs::ProfileOptions{});
  ASSERT_FALSE(reference.params.empty());
  ASSERT_GE(reference.trace.size(), 4u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::ProfileOptions profile;
    profile.trace_path = ::testing::TempDir() + "profiler_integration_" +
                         std::to_string(threads) + ".json";
    profile.status_path = ::testing::TempDir() + "profiler_integration_" +
                          std::to_string(threads) + "_status.json";
    bool active = false;
    const ProfiledRun profiled =
        run_scenario(artifacts, config, threads, profile, &active);
    EXPECT_TRUE(active);

    // The simulation itself is bitwise unchanged by profiling.
    EXPECT_EQ(profiled.params, reference.params);
    ASSERT_EQ(profiled.trace.size(), reference.trace.size());
    for (std::size_t i = 0; i < reference.trace.size(); ++i) {
      EXPECT_EQ(profiled.trace[i], reference.trace[i]) << "event " << i;
    }

    std::remove(profile.trace_path.c_str());
    std::remove(profile.status_path.c_str());
  }
}

TEST(ProfilerIntegration, ExportCoversEveryRoundAndPhase) {
  const ExperimentConfig config = profiled_scenario(53);
  const ExperimentArtifacts artifacts = build_experiment(config);

  obs::ProfileOptions profile;
  profile.trace_path = ::testing::TempDir() + "profiler_coverage.json";
  profile.status_path = ::testing::TempDir() + "profiler_coverage_status.json";
  run_scenario(artifacts, config, 2, profile);

  std::string error;
  const auto parsed = obs::parse_json(slurp(profile.trace_path), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const obs::JsonValue& doc = *parsed;
  EXPECT_EQ(doc["otherData"].number_or("spans_dropped", -1), 0.0);
  EXPECT_EQ(doc["otherData"].number_or("tracks", 0), 3.0);  // coord + 2 slots

  ASSERT_TRUE(doc["traceEvents"].is_array());
  std::map<std::string, std::size_t> spans;
  std::map<std::string, std::map<std::int64_t, std::size_t>> steps_covered;
  for (const obs::JsonValue& event : doc["traceEvents"].as_array()) {
    if (event.string_or("ph", "") != "X") continue;
    const std::string name = event.string_or("name", "?");
    ++spans[name];
    const double t = event["args"].number_or("t", -1);
    if (t >= 0) ++steps_covered[name][static_cast<std::int64_t>(t)];
  }

  // One top-level span per simulated round, covering every step.
  EXPECT_EQ(spans["round"], config.horizon);
  EXPECT_EQ(steps_covered["round"].size(), config.horizon);
  // Per-round phases: at least one span per round (edge phases run once per
  // participating edge per round, training once per sampled device).
  for (const char* phase :
       {"edge_round", "sampler_decision", "edge_reduce", "device_train",
        "local_sgd", "mach_weights"}) {
    SCOPED_TRACE(phase);
    EXPECT_EQ(steps_covered[phase].size(), config.horizon);
    EXPECT_GE(spans[phase], config.horizon);
  }
  // The sampling water-filling span sits below the decision span (no step
  // tag of its own — it runs once per decision).
  EXPECT_GE(spans["waterfill"], spans["sampler_decision"]);
  // Cloud-round phases fire on the T_g grid only.
  EXPECT_GE(spans["cloud_aggregate"], 1u);
  EXPECT_GE(spans["sampler_refresh"], 1u);
  EXPECT_GE(spans["evaluation"], 1u);

  // The heartbeat reached its final state.
  const auto status = obs::parse_json(slurp(profile.status_path), &error);
  ASSERT_TRUE(status.has_value()) << error;
  EXPECT_EQ(status->string_or("kind", ""), "mach_status");
  EXPECT_TRUE((*status)["finished"].as_bool());
  EXPECT_EQ(status->number_or("step", 0),
            static_cast<double>(config.horizon));
  EXPECT_GT(status->number_or("devices_trained", 0), 0.0);
  EXPECT_GT(status->number_or("sequence", 0), 0.0);

  std::remove(profile.trace_path.c_str());
  std::remove(profile.status_path.c_str());
}

}  // namespace
}  // namespace mach::hfl
