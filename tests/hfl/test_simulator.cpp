#include "hfl/simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "core/mach.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "hfl/experiment.h"
#include "sampling/baselines.h"

namespace mach::hfl {
namespace {

/// Small, fast config used across the integration tests.
ExperimentConfig tiny_config(std::uint64_t seed = 1) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 12;
  config.num_edges = 3;
  config.train_per_device = 30;
  config.test_examples = 200;
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 3;
  config.hfl.batch_size = 8;
  config.hfl.cloud_interval = 5;
  config.horizon = 40;
  config.num_stations = 12;
  config.num_hotspots = 3;
  return config.with_seed(seed);
}

struct BuiltSim {
  ExperimentArtifacts artifacts;
  std::unique_ptr<HflSimulator> sim;
};

BuiltSim build_sim(const ExperimentConfig& config) {
  BuiltSim built{build_experiment(config), nullptr};
  HflOptions options = config.hfl;
  options.seed = config.seed;
  built.sim = std::make_unique<HflSimulator>(
      built.artifacts.train, built.artifacts.test, built.artifacts.partition,
      built.artifacts.schedule, make_model_factory(config), options);
  return built;
}

/// Decorator asserting Eq. (3)/(12) on every strategy the engine consumes.
class BudgetCheckingSampler final : public Sampler {
 public:
  explicit BudgetCheckingSampler(SamplerPtr inner) : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name(); }
  void bind(const FederationInfo& info) override { inner_->bind(info); }
  std::vector<double> edge_probabilities(const EdgeSamplingContext& ctx) override {
    auto q = inner_->edge_probabilities(ctx);
    EXPECT_EQ(q.size(), ctx.devices.size());
    double total = 0.0;
    for (double p : q) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-9);
      total += p;
    }
    EXPECT_LE(total, ctx.capacity + 1e-6) << "edge " << ctx.edge << " t=" << ctx.t;
    ++checks_;
    return q;
  }
  void observe_training(const TrainingObservation& obs) override {
    inner_->observe_training(obs);
  }
  void on_cloud_round(std::size_t t) override { inner_->on_cloud_round(t); }
  bool needs_oracle() const override { return inner_->needs_oracle(); }
  std::size_t checks() const noexcept { return checks_; }

 private:
  SamplerPtr inner_;
  std::size_t checks_ = 0;
};

TEST(Simulator, RecordsEvalPointsOnCloudSchedule) {
  const auto config = tiny_config();
  auto built = build_sim(config);
  sampling::UniformSampler sampler;
  const MetricsRecorder metrics = built.sim->run(sampler, config.horizon);
  ASSERT_FALSE(metrics.empty());
  const auto& points = metrics.points();
  EXPECT_EQ(points.front().t, 0u);  // initial evaluation
  // Cloud rounds happen at t = 0, Tg, 2Tg, ... and are recorded at t+1.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ((points[i].t - 1) % config.hfl.cloud_interval, 0u);
    EXPECT_GT(points[i].t, points[i - 1].t);
  }
  // 40 steps with Tg=5 -> cloud rounds at 0,5,...,35 -> 8 evals + initial.
  EXPECT_EQ(points.size(), 9u);
}

TEST(Simulator, LearningImprovesAccuracy) {
  auto config = tiny_config(3);
  config.horizon = 80;
  auto built = build_sim(config);
  sampling::UniformSampler sampler;
  const MetricsRecorder metrics = built.sim->run(sampler, config.horizon);
  const double initial = metrics.points().front().test_accuracy;
  EXPECT_GT(metrics.best_accuracy(), initial + 0.2);
  // Literal Eq. (5) aggregation is noisy on tiny edges, so compare the
  // best loss over the run rather than the final point.
  double best_loss = metrics.points().front().test_loss;
  for (const auto& p : metrics.points()) best_loss = std::min(best_loss, p.test_loss);
  EXPECT_LT(best_loss, metrics.points().front().test_loss);
}

TEST(Simulator, EveryStrategyRespectsBudget) {
  for (const char* name : {"uniform", "class_balance", "statistical", "mach"}) {
    const auto config = tiny_config(4);
    auto built = build_sim(config);
    BudgetCheckingSampler sampler(core::make_sampler(name));
    built.sim->run(sampler, config.horizon);
    EXPECT_GT(sampler.checks(), 0u) << name;
  }
}

TEST(Simulator, DeterministicGivenSeed) {
  const auto config = tiny_config(5);
  auto a = build_sim(config);
  auto b = build_sim(config);
  sampling::UniformSampler sa, sb;
  const auto ma = a.sim->run(sa, config.horizon);
  const auto mb = b.sim->run(sb, config.horizon);
  ASSERT_EQ(ma.points().size(), mb.points().size());
  for (std::size_t i = 0; i < ma.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(ma.points()[i].test_accuracy, mb.points()[i].test_accuracy);
    EXPECT_DOUBLE_EQ(ma.points()[i].test_loss, mb.points()[i].test_loss);
  }
}

TEST(Simulator, DifferentSeedsDiverge) {
  auto a = build_sim(tiny_config(6));
  auto b = build_sim(tiny_config(7));
  sampling::UniformSampler sa, sb;
  const auto ma = a.sim->run(sa, 40);
  const auto mb = b.sim->run(sb, 40);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(ma.points().size(), mb.points().size()); ++i) {
    differs |= ma.points()[i].test_accuracy != mb.points()[i].test_accuracy;
  }
  EXPECT_TRUE(differs);
}

TEST(Simulator, FullSamplerMatchesSaturatedUniform) {
  // Per-edge capacities >= |M| make the uniform strategy return q = 1 for
  // every device regardless of how mobility distributes devices over edges,
  // which must be byte-identical to FullParticipationSampler.
  auto config = tiny_config(8);
  config.hfl.edge_capacities = {12.0, 12.0, 12.0};
  config.horizon = 20;
  auto a = build_sim(config);
  auto b = build_sim(config);
  sampling::UniformSampler uniform;
  sampling::FullParticipationSampler full;
  const auto ma = a.sim->run(uniform, config.horizon);
  const auto mb = b.sim->run(full, config.horizon);
  ASSERT_EQ(ma.points().size(), mb.points().size());
  for (std::size_t i = 0; i < ma.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(ma.points()[i].test_accuracy, mb.points()[i].test_accuracy);
  }
}

TEST(Simulator, OracleSamplerPathWorks) {
  const auto config = tiny_config(9);
  auto built = build_sim(config);
  core::MachOracleSampler sampler;
  const auto metrics = built.sim->run(sampler, 20);
  EXPECT_FALSE(metrics.empty());
}

TEST(Simulator, MachEndToEnd) {
  const auto config = tiny_config(10);
  auto built = build_sim(config);
  core::MachSampler sampler;
  const auto metrics = built.sim->run(sampler, config.horizon);
  EXPECT_GT(metrics.best_accuracy(), metrics.points().front().test_accuracy);
}

TEST(Simulator, EveryAggregationFormRuns) {
  for (const auto form :
       {AggregationForm::Literal, AggregationForm::SelfNormalized,
        AggregationForm::UpdateForm}) {
    auto config = tiny_config(11);
    config.hfl.aggregation = form;
    auto built = build_sim(config);
    sampling::FullParticipationSampler sampler;  // q=1: every form is stable
    const auto metrics = built.sim->run(sampler, 20);
    EXPECT_FALSE(metrics.empty());
    for (const auto& p : metrics.points()) {
      EXPECT_TRUE(std::isfinite(p.test_loss));
    }
  }
}

TEST(Simulator, AggregationFormsCoincideAtFullParticipation) {
  // With q = 1 everywhere, all three HT forms reduce to the plain average
  // of the participating devices' models.
  auto config = tiny_config(12);
  config.hfl.participation = 1.0;
  config.horizon = 15;
  std::vector<MetricsRecorder> results;
  for (const auto form :
       {AggregationForm::Literal, AggregationForm::SelfNormalized,
        AggregationForm::UpdateForm}) {
    auto run_config = config;
    run_config.hfl.aggregation = form;
    auto built = build_sim(run_config);
    sampling::FullParticipationSampler sampler;
    results.push_back(built.sim->run(sampler, config.horizon));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].points().size(), results[0].points().size());
    for (std::size_t i = 0; i < results[0].points().size(); ++i) {
      EXPECT_NEAR(results[v].points()[i].test_accuracy,
                  results[0].points()[i].test_accuracy, 1e-6);
    }
  }
}

TEST(Simulator, HtAggregationIsUnbiasedMonteCarlo) {
  // Lemma 1: E[w_edge | Q] equals the plain average of the per-device local
  // models. Setup is made deterministic apart from the Bernoulli draws:
  // one edge, each device owns a single unique example (so its minibatches,
  // and hence its local model, are fixed given the run seed), and only
  // `sampling_seed` varies across trials.
  data::SyntheticGenerator gen(data::SyntheticSpec::mnist_like(), 5);
  common::Rng data_rng(6);
  const data::Dataset train = gen.generate_uniform(4, data_rng);
  const data::Dataset test = gen.generate_uniform(16, data_rng);
  data::Partition partition = {{0}, {1}, {2}, {3}};
  const auto schedule = mobility::MobilitySchedule(1, 4, 1, {0, 0, 0, 0});

  auto factory = [] {
    nn::Sequential model;
    model.add(std::make_unique<nn::Flatten>())
        .add(std::make_unique<nn::Dense>(144, 10));
    return model;
  };

  HflOptions options;
  options.local_epochs = 1;
  options.cloud_interval = 1;
  options.batch_size = 2;
  options.learning_rate = 0.1;
  options.participation = 0.75;  // q = 0.75 each; P(no participant) ~ 0.4%
  options.aggregation = AggregationForm::Literal;
  options.seed = 11;

  // Reference: full participation -> global model is the exact average.
  std::vector<float> reference;
  {
    HflSimulator sim(train, test, partition, schedule, factory, options);
    sampling::FullParticipationSampler full;
    sim.run(full, 1);
    reference = sim.global_parameters();
  }

  const std::size_t trials = 400;
  std::vector<double> mean_params;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    HflOptions trial_options = options;
    trial_options.sampling_seed = 1000 + trial;
    HflSimulator sim(train, test, partition, schedule, factory, trial_options);
    sampling::UniformSampler uniform;
    sim.run(uniform, 1);
    const auto& params = sim.global_parameters();
    if (mean_params.empty()) mean_params.assign(params.size(), 0.0);
    for (std::size_t j = 0; j < params.size(); ++j) mean_params[j] += params[j];
  }
  for (auto& value : mean_params) value /= static_cast<double>(trials);

  // Compare on aggregate statistics (per-parameter MC noise is sizeable).
  double diff = 0.0, scale = 0.0;
  for (std::size_t j = 0; j < reference.size(); ++j) {
    diff += std::abs(mean_params[j] - reference[j]);
    scale += std::abs(reference[j]);
  }
  EXPECT_LT(diff / scale, 0.08) << "relative L1 deviation of the MC mean";
}

TEST(Simulator, SamplingSeedVariesOnlyBernoulliDraws) {
  auto config = tiny_config(19);
  auto artifacts = build_experiment(config);
  HflOptions a = config.hfl;
  a.seed = config.seed;
  a.sampling_seed = 100;
  HflOptions b = a;
  b.sampling_seed = 200;
  HflSimulator sim_a(artifacts.train, artifacts.test, artifacts.partition,
                     artifacts.schedule, make_model_factory(config), a);
  HflSimulator sim_b(artifacts.train, artifacts.test, artifacts.partition,
                     artifacts.schedule, make_model_factory(config), b);
  // Identical before any sampling happens...
  ASSERT_EQ(sim_a.global_parameters(), sim_b.global_parameters());
  sampling::UniformSampler sa, sb;
  const auto ma = sim_a.run(sa, 10);
  const auto mb = sim_b.run(sb, 10);
  // ...but different sampling realisations afterwards.
  bool differs = false;
  for (std::size_t i = 0; i < ma.points().size(); ++i) {
    differs |= ma.points()[i].test_accuracy != mb.points()[i].test_accuracy;
  }
  EXPECT_TRUE(differs);
}

TEST(Simulator, EdgeCapacityDerivation) {
  const auto config = tiny_config(13);
  auto built = build_sim(config);
  // participation * devices / edges = 0.5 * 12 / 3 = 2.
  EXPECT_DOUBLE_EQ(built.sim->edge_capacity(0), 2.0);
  EXPECT_DOUBLE_EQ(built.sim->edge_capacity(2), 2.0);
}

TEST(Simulator, ExplicitEdgeCapacities) {
  auto config = tiny_config(14);
  config.hfl.edge_capacities = {1.0, 2.0, 3.0};
  auto built = build_sim(config);
  EXPECT_DOUBLE_EQ(built.sim->edge_capacity(0), 1.0);
  EXPECT_DOUBLE_EQ(built.sim->edge_capacity(1), 2.0);
  EXPECT_DOUBLE_EQ(built.sim->edge_capacity(2), 3.0);
}

TEST(Simulator, FederationInfoHistogramsMatchPartition) {
  const auto config = tiny_config(15);
  auto built = build_sim(config);
  const FederationInfo info = built.sim->federation_info();
  EXPECT_EQ(info.num_devices, 12u);
  EXPECT_EQ(info.num_edges, 3u);
  EXPECT_EQ(info.num_classes, 10u);
  ASSERT_EQ(info.class_histograms.size(), 12u);
  for (std::size_t m = 0; m < 12; ++m) {
    std::size_t total = std::accumulate(info.class_histograms[m].begin(),
                                        info.class_histograms[m].end(), 0ul);
    EXPECT_EQ(total, built.artifacts.partition[m].size());
  }
}

TEST(Simulator, ConstructorValidation) {
  const auto config = tiny_config(16);
  auto artifacts = build_experiment(config);
  HflOptions bad = config.hfl;
  bad.local_epochs = 0;
  EXPECT_THROW(HflSimulator(artifacts.train, artifacts.test, artifacts.partition,
                            artifacts.schedule, make_model_factory(config), bad),
               std::invalid_argument);
  HflOptions bad_caps = config.hfl;
  bad_caps.edge_capacities = {1.0};  // schedule has 3 edges
  EXPECT_THROW(HflSimulator(artifacts.train, artifacts.test, artifacts.partition,
                            artifacts.schedule, make_model_factory(config), bad_caps),
               std::invalid_argument);
  // Partition with wrong device count.
  data::Partition short_partition(artifacts.partition.begin(),
                                  artifacts.partition.begin() + 5);
  EXPECT_THROW(HflSimulator(artifacts.train, artifacts.test, short_partition,
                            artifacts.schedule, make_model_factory(config),
                            config.hfl),
               std::invalid_argument);
}

TEST(Simulator, LearningRateDecayReducesStep) {
  auto config = tiny_config(17);
  config.hfl.lr_decay = 0.1;
  auto built = build_sim(config);
  sampling::UniformSampler sampler;
  // Just verifying the decay path executes and training stays finite.
  const auto metrics = built.sim->run(sampler, 20);
  for (const auto& p : metrics.points()) EXPECT_TRUE(std::isfinite(p.test_loss));
}

TEST(Simulator, GlobalGradNormTracksTheoremLhs) {
  auto config = tiny_config(20);
  config.hfl.track_global_grad_norm_examples = 64;
  config.horizon = 60;
  auto built = build_sim(config);
  sampling::UniformSampler sampler;
  const auto metrics = built.sim->run(sampler, config.horizon);
  ASSERT_GE(metrics.points().size(), 3u);
  double initial = metrics.points().front().global_grad_sq_norm;
  EXPECT_GT(initial, 0.0);
  for (const auto& p : metrics.points()) {
    EXPECT_TRUE(std::isfinite(p.global_grad_sq_norm));
    EXPECT_GE(p.global_grad_sq_norm, 0.0);
  }
  // Training must shrink the average gradient norm versus the untrained
  // model (the convergence Theorem 1 quantifies).
  double late = 0.0;
  const auto& points = metrics.points();
  for (std::size_t i = points.size() - 3; i < points.size(); ++i) {
    late += points[i].global_grad_sq_norm;
  }
  EXPECT_LT(late / 3.0, initial);
}

TEST(Simulator, GradNormTrackingOffByDefault) {
  const auto config = tiny_config(21);
  auto built = build_sim(config);
  sampling::UniformSampler sampler;
  const auto metrics = built.sim->run(sampler, 10);
  for (const auto& p : metrics.points()) {
    EXPECT_DOUBLE_EQ(p.global_grad_sq_norm, 0.0);
  }
}

TEST(Simulator, EvalMaxExamplesCapsEvaluation) {
  auto config = tiny_config(18);
  config.hfl.eval_max_examples = 50;
  auto built = build_sim(config);
  const EvalPoint point = built.sim->evaluate_global(0);
  EXPECT_GE(point.test_accuracy, 0.0);
  EXPECT_LE(point.test_accuracy, 1.0);
}

}  // namespace
}  // namespace mach::hfl
