// End-to-end integration of the extension samplers and aggregation forms.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "hfl/experiment.h"

namespace mach::hfl {
namespace {

ExperimentConfig tiny(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 10;
  config.num_edges = 2;
  config.train_per_device = 25;
  config.test_examples = 120;
  config.mlp_hidden = 12;
  config.hfl.local_epochs = 2;
  config.horizon = 25;
  config.num_stations = 8;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

class SamplerIntegration : public ::testing::TestWithParam<const char*> {};

TEST_P(SamplerIntegration, RunsAndLearns) {
  const auto config = tiny(31);
  auto sampler = core::make_sampler(GetParam());
  const RunResult result = run_experiment(config, *sampler);
  ASSERT_FALSE(result.metrics.empty());
  EXPECT_EQ(result.sampler_name, GetParam());
  for (const auto& p : result.metrics.points()) {
    EXPECT_TRUE(std::isfinite(p.test_loss));
    EXPECT_GE(p.test_accuracy, 0.0);
    EXPECT_LE(p.test_accuracy, 1.0);
  }
  // Every strategy must beat the untrained model within 25 steps.
  EXPECT_GT(result.metrics.best_accuracy(),
            result.metrics.points().front().test_accuracy);
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSamplers, SamplerIntegration,
                         ::testing::Values("uniform", "class_balance",
                                           "statistical", "mach", "mach_p",
                                           "mach_global", "power_of_choice",
                                           "oort", "full"),
                         [](const auto& info) { return std::string(info.param); });

TEST(AggregationForms, DivergeUnderPartialParticipation) {
  // With q < 1, the three HT forms are genuinely different dynamical
  // systems; their trajectories must not coincide.
  auto config = tiny(32);
  config.horizon = 20;
  std::vector<double> finals;
  for (const auto form :
       {AggregationForm::Literal, AggregationForm::SelfNormalized,
        AggregationForm::UpdateForm}) {
    auto run_config = config;
    run_config.hfl.aggregation = form;
    auto sampler = core::make_sampler("uniform");
    finals.push_back(
        run_experiment(run_config, *sampler).metrics.points().back().test_accuracy);
  }
  EXPECT_FALSE(finals[0] == finals[1] && finals[1] == finals[2]);
}

TEST(AggregationForms, LowVarianceFormsAreStable) {
  // Self-normalised and update-form runs must never produce non-finite
  // losses even with aggressive (unclipped) statistical sampling.
  auto config = tiny(33);
  config.horizon = 30;
  for (const auto form :
       {AggregationForm::SelfNormalized, AggregationForm::UpdateForm}) {
    auto run_config = config;
    run_config.hfl.aggregation = form;
    auto sampler = core::make_sampler("statistical");
    const auto result = run_experiment(run_config, *sampler);
    for (const auto& p : result.metrics.points()) {
      EXPECT_TRUE(std::isfinite(p.test_loss)) << "form " << static_cast<int>(form);
    }
  }
}

}  // namespace
}  // namespace mach::hfl
