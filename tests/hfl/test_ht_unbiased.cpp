// Property test for the Horvitz-Thompson edge aggregate (Eq. 5): over
// randomised inclusion-probability vectors the estimator
//   x_hat = (1/M) * sum_m 1{sampled_m} * x_m / q_m
// is unbiased for the plain edge average, and the inverse-propensity
// correction q_m -> q_m * a_m keeps it unbiased when device updates are
// independently thinned by faults with arrival probability a_m. A negative
// control shows the *uncorrected* estimator is measurably biased under the
// same faults — the correction is load-bearing, not decorative.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "sampling/budget.h"

namespace mach::hfl {
namespace {

struct Population {
  std::vector<double> values;  // per-device updates x_m
  std::vector<double> probs;   // inclusion probabilities q_m (all > 0)
  double mean = 0.0;           // exact target (1/M) * sum x_m
};

// Randomised population: heterogeneous values and a budgeted, water-filled
// probability vector exactly like the engine produces from sampler weights.
Population make_population(common::Rng& rng, std::size_t devices,
                           double capacity) {
  Population population;
  std::vector<double> weights(devices);
  population.values.resize(devices);
  for (std::size_t m = 0; m < devices; ++m) {
    weights[m] = rng.uniform(0.05, 1.0);  // strictly positive: q_m > 0
    population.values[m] = rng.normal(rng.uniform(-2.0, 2.0), 1.5);
    population.mean += population.values[m];
  }
  population.mean /= static_cast<double>(devices);
  population.probs = sampling::budgeted_probabilities(weights, capacity);
  return population;
}

struct MonteCarlo {
  double mean = 0.0;
  double stderr_ = 0.0;
};

// Runs `trials` independent rounds of Bernoulli sampling (+ optional fault
// thinning via the injector) and returns the mean HT estimate with its
// standard error. `correct_for_arrival` toggles the IPW denominator.
MonteCarlo estimate(const Population& population, common::Rng& rng,
                    std::size_t trials, const fault::FaultInjector* injector,
                    bool correct_for_arrival) {
  const std::size_t devices = population.values.size();
  const double inv_m = 1.0 / static_cast<double>(devices);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    double x_hat = 0.0;
    for (std::size_t m = 0; m < devices; ++m) {
      if (!rng.bernoulli(population.probs[m])) continue;
      double q_effective = population.probs[m];
      if (injector != nullptr) {
        const fault::DeviceFaultDecision fate =
            injector->device_fate(trial, 0, static_cast<std::uint32_t>(m));
        if (!fate.arrived) continue;
        if (correct_for_arrival) {
          q_effective *= injector->arrival_probability(
              0, static_cast<std::uint32_t>(m));
        }
      }
      x_hat += inv_m * population.values[m] / q_effective;
    }
    sum += x_hat;
    sum_sq += x_hat * x_hat;
  }
  MonteCarlo result;
  const double n = static_cast<double>(trials);
  result.mean = sum / n;
  const double variance = (sum_sq - sum * sum / n) / (n - 1.0);
  result.stderr_ = std::sqrt(variance / n);
  return result;
}

TEST(HtUnbiased, EdgeAggregateIsUnbiasedOverRandomProbabilities) {
  // Five independent random populations; each must pass a 4-sigma check.
  common::Rng rng(0xE51u);
  for (int repeat = 0; repeat < 5; ++repeat) {
    SCOPED_TRACE("population " + std::to_string(repeat));
    const std::size_t devices = 6 + static_cast<std::size_t>(repeat) * 3;
    const double capacity = rng.uniform(1.5, 0.8 * static_cast<double>(devices));
    const Population population = make_population(rng, devices, capacity);
    const MonteCarlo mc = estimate(population, rng, 20000, nullptr, false);
    EXPECT_NEAR(mc.mean, population.mean, 4.0 * mc.stderr_)
        << "bias " << mc.mean - population.mean << " vs stderr " << mc.stderr_;
  }
}

TEST(HtUnbiased, InversePropensityCorrectionSurvivesDropouts) {
  // Faults thin arrivals independently of the Bernoulli sampling; dividing
  // each survivor's weight by its analytic arrival probability must keep the
  // estimator centred on the same fault-free target.
  const fault::FaultSchedule schedule = fault::FaultSchedule::parse(
      "dropout:p=0.3;straggler:p=0.4,delay=1.5,timeout=1,backoff=0.5,"
      "retries=1;seed=41");
  const fault::FaultInjector injector(schedule, 1);

  common::Rng rng(0xE52u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    SCOPED_TRACE("population " + std::to_string(repeat));
    const Population population = make_population(rng, 10, 4.0);
    const MonteCarlo mc = estimate(population, rng, 30000, &injector, true);
    EXPECT_NEAR(mc.mean, population.mean, 4.0 * mc.stderr_)
        << "bias " << mc.mean - population.mean << " vs stderr " << mc.stderr_;
  }
}

TEST(HtUnbiased, UncorrectedEstimatorIsBiasedUnderDropouts) {
  // Negative control: with the same faults but no IPW correction the
  // estimator shrinks towards zero by the arrival rate. Assert the bias is
  // real (many sigma) so the two positive tests above can't both pass
  // vacuously.
  const fault::FaultSchedule schedule =
      fault::FaultSchedule::parse("dropout:p=0.5;seed=43");
  const fault::FaultInjector injector(schedule, 1);

  common::Rng rng(0xE53u);
  Population population = make_population(rng, 10, 4.0);
  // Shift all values away from zero so the attenuation bias cannot cancel.
  for (double& value : population.values) value += 10.0;
  population.mean += 10.0;

  const MonteCarlo mc = estimate(population, rng, 30000, &injector, false);
  EXPECT_LT(mc.mean + 6.0 * mc.stderr_, population.mean)
      << "expected attenuation towards zero, got mean " << mc.mean;
}

}  // namespace
}  // namespace mach::hfl
