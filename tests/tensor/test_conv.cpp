#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"

namespace mach::tensor {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, common::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

/// Direct (non-im2col) convolution reference, stride 1, zero padding.
Tensor naive_conv(const Tensor& input, const Tensor& weight, const Tensor& bias,
                  const ConvSpec& spec) {
  const std::size_t batch = input.dim(0), ic = spec.in_channels, h = input.dim(2),
                    w = input.dim(3);
  const std::size_t oc = spec.out_channels, k = spec.kernel;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  Tensor out({batch, oc, oh, ow});
  for (std::size_t img = 0; img < batch; ++img) {
    for (std::size_t o = 0; o < oc; ++o) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias[o];
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const auto iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                static_cast<std::ptrdiff_t>(spec.pad);
                const auto ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                static_cast<std::ptrdiff_t>(spec.pad);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h) || ix < 0 ||
                    ix >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                acc += input.at4(img, c, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix)) *
                       weight.at4(o, c, ky, kx);
              }
            }
          }
          out.at4(img, o, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

TEST(Conv2D, ForwardMatchesNaiveReference) {
  common::Rng rng(11);
  ConvSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 3, .pad = 1, .stride = 1};
  const Tensor input = random_tensor({2, 2, 6, 6}, rng);
  const Tensor weight = random_tensor({3, 2, 3, 3}, rng);
  const Tensor bias = random_tensor({3}, rng);
  Tensor output({2, 3, 6, 6});
  ScratchArena arena;
  conv2d_forward(input, weight, bias, spec, output, arena);
  const Tensor expected = naive_conv(input, weight, bias, spec);
  for (std::size_t i = 0; i < output.numel(); ++i) {
    ASSERT_NEAR(output[i], expected[i], 1e-4f) << "i=" << i;
  }
}

TEST(Conv2D, ForwardNoPadding) {
  common::Rng rng(12);
  ConvSpec spec{.in_channels = 1, .out_channels = 2, .kernel = 3, .pad = 0, .stride = 1};
  const Tensor input = random_tensor({1, 1, 5, 5}, rng);
  const Tensor weight = random_tensor({2, 1, 3, 3}, rng);
  const Tensor bias = random_tensor({2}, rng);
  Tensor output({1, 2, 3, 3});
  ScratchArena arena;
  conv2d_forward(input, weight, bias, spec, output, arena);
  const Tensor expected = naive_conv(input, weight, bias, spec);
  for (std::size_t i = 0; i < output.numel(); ++i) {
    ASSERT_NEAR(output[i], expected[i], 1e-4f);
  }
}

TEST(Conv2D, Im2ColCol2ImAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the two must be adjoint linear maps
  // for backprop to be correct.
  common::Rng rng(13);
  ConvSpec spec{.in_channels = 2, .out_channels = 1, .kernel = 3, .pad = 1, .stride = 1};
  const Tensor x = random_tensor({1, 2, 4, 4}, rng);
  Tensor cols;
  im2col(x, 0, spec, cols);
  const Tensor y = random_tensor(cols.shape(), rng);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  Tensor x_back({1, 2, 4, 4});
  col2im(y, 0, spec, x_back);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * x_back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Conv2D, BackwardMatchesNumericalGradient) {
  common::Rng rng(14);
  ConvSpec spec{.in_channels = 1, .out_channels = 2, .kernel = 3, .pad = 1, .stride = 1};
  Tensor input = random_tensor({1, 1, 4, 4}, rng);
  Tensor weight = random_tensor({2, 1, 3, 3}, rng);
  const Tensor bias = random_tensor({2}, rng);
  // Loss = sum of outputs, so grad_output is all ones.
  Tensor output({1, 2, 4, 4});
  ScratchArena arena;
  Tensor grad_output(output.shape());
  grad_output.fill(1.0f);
  Tensor grad_input(input.shape());
  Tensor grad_weight(weight.shape());
  Tensor grad_bias(bias.shape());
  conv2d_backward(input, weight, grad_output, spec, grad_input, grad_weight,
                  grad_bias, arena);

  auto loss = [&](const Tensor& in, const Tensor& wt) {
    Tensor out({1, 2, 4, 4});
    ScratchArena s;
    conv2d_forward(in, wt, bias, spec, out, s);
    double total = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) total += out[i];
    return total;
  };

  const float eps = 1e-2f;
  // Spot-check a handful of input coordinates.
  for (std::size_t idx : {0u, 5u, 9u, 15u}) {
    Tensor plus = input, minus = input;
    plus[idx] += eps;
    minus[idx] -= eps;
    const double numeric = (loss(plus, weight) - loss(minus, weight)) / (2.0 * eps);
    EXPECT_NEAR(grad_input[idx], numeric, 5e-2) << "input idx " << idx;
  }
  for (std::size_t idx : {0u, 4u, 10u, 17u}) {
    Tensor plus = weight, minus = weight;
    plus[idx] += eps;
    minus[idx] -= eps;
    const double numeric = (loss(input, plus) - loss(input, minus)) / (2.0 * eps);
    EXPECT_NEAR(grad_weight[idx], numeric, 5e-2) << "weight idx " << idx;
  }
  // Bias gradient of a sum loss is the number of output pixels per channel.
  EXPECT_NEAR(grad_bias[0], 16.0f, 1e-3f);
  EXPECT_NEAR(grad_bias[1], 16.0f, 1e-3f);
}

TEST(ConvSpec, OutputDimension) {
  ConvSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 3, .pad = 1, .stride = 1};
  EXPECT_EQ(spec.out_dim(12), 12u);
  spec.pad = 0;
  EXPECT_EQ(spec.out_dim(12), 10u);
}

}  // namespace
}  // namespace mach::tensor
