#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace mach::tensor {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, common::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

/// Naive triple-loop reference GEMM.
Tensor naive_gemm(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a.at2(i, p) * b.at2(p, j);
      c.at2(i, j) = acc;
    }
  }
  return c;
}

void expect_near(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

TEST(Gemm, MatchesNaiveReference) {
  common::Rng rng(1);
  const Tensor a = random_tensor({5, 7}, rng);
  const Tensor b = random_tensor({7, 4}, rng);
  Tensor c({5, 4});
  gemm(a, b, c);
  expect_near(c, naive_gemm(a, b));
}

TEST(Gemm, AccumulateAddsToExisting) {
  common::Rng rng(2);
  const Tensor a = random_tensor({3, 3}, rng);
  const Tensor b = random_tensor({3, 3}, rng);
  Tensor c({3, 3});
  c.fill(1.0f);
  gemm(a, b, c, /*accumulate=*/true);
  Tensor expected = naive_gemm(a, b);
  for (auto& v : expected.flat()) v += 1.0f;
  expect_near(c, expected);
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 2}), c({2, 2});
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
}

TEST(Gemm, TransposedAMatchesReference) {
  common::Rng rng(3);
  const Tensor a = random_tensor({6, 4}, rng);  // A^T is 4x6
  const Tensor b = random_tensor({6, 5}, rng);
  Tensor c({4, 5});
  gemm_at_b(a, b, c);
  // Reference: transpose a then naive gemm.
  Tensor at({4, 6});
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j) at.at2(j, i) = a.at2(i, j);
  expect_near(c, naive_gemm(at, b));
}

TEST(Gemm, TransposedBMatchesReference) {
  common::Rng rng(4);
  const Tensor a = random_tensor({4, 6}, rng);
  const Tensor b = random_tensor({5, 6}, rng);  // B^T is 6x5
  Tensor c({4, 5});
  gemm_a_bt(a, b, c);
  Tensor bt({6, 5});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j) bt.at2(j, i) = b.at2(i, j);
  expect_near(c, naive_gemm(a, bt));
}

TEST(Bias, AddRowBias) {
  Tensor x({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {10, 20, 30});
  add_row_bias(x, bias);
  EXPECT_FLOAT_EQ(x.at2(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(x.at2(1, 2), 31.0f);
}

TEST(Bias, SumRows) {
  Tensor grad({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias_grad({3});
  sum_rows(grad, bias_grad);
  EXPECT_FLOAT_EQ(bias_grad[0], 5.0f);
  EXPECT_FLOAT_EQ(bias_grad[1], 7.0f);
  EXPECT_FLOAT_EQ(bias_grad[2], 9.0f);
  sum_rows(grad, bias_grad, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(bias_grad[0], 10.0f);
}

TEST(Relu, ForwardAndBackward) {
  Tensor x({4}, {-1, 0, 2, -3});
  Tensor y({4});
  relu_forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor gout({4}, {1, 1, 1, 1});
  Tensor gin({4});
  relu_backward(x, gout, gin);
  EXPECT_FLOAT_EQ(gin[0], 0.0f);
  EXPECT_FLOAT_EQ(gin[1], 0.0f);  // exactly zero input -> no gradient
  EXPECT_FLOAT_EQ(gin[2], 1.0f);
  EXPECT_FLOAT_EQ(gin[3], 0.0f);
}

TEST(Softmax, RowsSumToOne) {
  common::Rng rng(5);
  const Tensor logits = random_tensor({6, 10}, rng);
  Tensor probs({6, 10});
  softmax(logits, probs);
  for (std::size_t i = 0; i < 6; ++i) {
    float total = 0.0f;
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_GE(probs.at2(i, j), 0.0f);
      total += probs.at2(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 3}, {1000.0f, 1000.0f, 900.0f});
  Tensor probs({1, 3});
  softmax(logits, probs);
  EXPECT_NEAR(probs[0], 0.5f, 1e-5f);
  EXPECT_NEAR(probs[1], 0.5f, 1e-5f);
  EXPECT_NEAR(probs[2], 0.0f, 1e-5f);
}

TEST(CrossEntropy, KnownValue) {
  Tensor probs({2, 2}, {0.5f, 0.5f, 0.25f, 0.75f});
  const std::vector<int> labels = {0, 1};
  const double expected = -(std::log(0.5) + std::log(0.75)) / 2.0;
  EXPECT_NEAR(cross_entropy_loss(probs, labels), expected, 1e-6);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Tensor probs({1, 2}, {0.5f, 0.5f});
  const std::vector<int> labels = {2};
  EXPECT_THROW(cross_entropy_loss(probs, labels), std::out_of_range);
}

TEST(CrossEntropy, BackwardIsProbsMinusOnehotOverBatch) {
  Tensor probs({2, 3}, {0.2f, 0.3f, 0.5f, 0.6f, 0.3f, 0.1f});
  const std::vector<int> labels = {2, 0};
  Tensor grad({2, 3});
  softmax_cross_entropy_backward(probs, labels, grad);
  EXPECT_NEAR(grad.at2(0, 0), 0.1f, 1e-6f);
  EXPECT_NEAR(grad.at2(0, 2), (0.5f - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at2(1, 0), (0.6f - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at2(1, 1), 0.15f, 1e-6f);
}

TEST(CountCorrect, ArgmaxAccuracy) {
  Tensor logits({3, 2}, {2.0f, 1.0f, 0.0f, 3.0f, 5.0f, 4.0f});
  const std::vector<int> labels = {0, 1, 1};
  EXPECT_EQ(count_correct(logits, labels), 2u);
}

TEST(MaxPool, ForwardSelectsMaxAndBackwardRoutesGradient) {
  // One 4x4 image, one channel.
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y({1, 1, 2, 2});
  std::vector<std::uint32_t> argmax;
  maxpool2x2_forward(x, y, argmax);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
  EXPECT_FLOAT_EQ(y[2], 13.0f);
  EXPECT_FLOAT_EQ(y[3], 15.0f);

  Tensor gout({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor gin({1, 1, 4, 4});
  maxpool2x2_backward(gout, argmax, gin);
  EXPECT_FLOAT_EQ(gin[5], 1.0f);
  EXPECT_FLOAT_EQ(gin[7], 2.0f);
  EXPECT_FLOAT_EQ(gin[13], 3.0f);
  EXPECT_FLOAT_EQ(gin[15], 4.0f);
  float total = 0.0f;
  for (std::size_t i = 0; i < 16; ++i) total += gin[i];
  EXPECT_FLOAT_EQ(total, 10.0f);
}

TEST(MaxPool, OddDimensionsThrow) {
  Tensor x({1, 1, 3, 4});
  Tensor y({1, 1, 1, 2});
  std::vector<std::uint32_t> argmax;
  EXPECT_THROW(maxpool2x2_forward(x, y, argmax), std::invalid_argument);
}

}  // namespace
}  // namespace mach::tensor
