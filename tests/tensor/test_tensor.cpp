#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mach::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeConstructionZeroFilled) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, DataConstructionValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, At2RowMajorLayout) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at2(0, 0), 0.0f);
  EXPECT_EQ(t.at2(0, 2), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_EQ(t.at2(1, 2), 5.0f);
}

TEST(Tensor, At2BoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at2(2, 0), std::out_of_range);
  EXPECT_THROW(t.at2(0, 3), std::out_of_range);
  Tensor t1({6});
  EXPECT_THROW(t1.at2(0, 0), std::out_of_range);  // wrong rank
}

TEST(Tensor, At4NchwLayout) {
  Tensor t({2, 2, 2, 2});
  t.at4(1, 0, 1, 0) = 7.0f;
  // ((n*C + c)*H + h)*W + w = ((1*2+0)*2+1)*2+0 = 10
  EXPECT_EQ(t[10], 7.0f);
  EXPECT_THROW(t.at4(2, 0, 0, 0), std::out_of_range);
}

TEST(Tensor, DimChecked) {
  Tensor t({4, 5});
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.dim(1), 5u);
  EXPECT_THROW(t.dim(2), std::out_of_range);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
  t.zero();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  t.reshape({3, 2});
  EXPECT_EQ(t.at2(2, 1), 5.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, Axpy) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 12.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
  Tensor c({2});
  EXPECT_THROW(a.axpy(1.0f, c), std::invalid_argument);
}

TEST(Tensor, Scale) {
  Tensor a({2}, {3, -4});
  a.scale(-2.0f);
  EXPECT_FLOAT_EQ(a[0], -6.0f);
  EXPECT_FLOAT_EQ(a[1], 8.0f);
}

TEST(Tensor, SquaredNorm) {
  Tensor a({3}, {3, 4, 0});
  EXPECT_DOUBLE_EQ(a.squared_norm(), 25.0);
}

TEST(Tensor, SameShape) {
  Tensor a({2, 3}), b({2, 3}), c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Tensor, ShapeString) {
  Tensor a({2, 3, 4});
  EXPECT_EQ(a.shape_string(), "Tensor[2, 3, 4]");
}

TEST(Tensor, ShapeNumel) {
  const std::vector<std::size_t> shape = {2, 3, 4};
  EXPECT_EQ(Tensor::shape_numel(shape), 24u);
  EXPECT_EQ(Tensor::shape_numel({}), 1u);
}

}  // namespace
}  // namespace mach::tensor
