// Property-style equivalence suite: blocked kernels vs the retained
// reference kernels over randomized and adversarial shapes.
//
// Tolerance policy: EXACT bitwise equality (EXPECT_EQ on floats, no
// epsilon). The blocked kernels are required to reproduce the reference's
// per-element float addition chains exactly (see kernels.h): cache blocking
// only spills/reloads exact partial sums, the kernel TUs are built with
// -ffp-contract=off, and reductions are never reassociated. Exactness is
// what PR 2's serial-vs-parallel bitwise-equality contract rests on, so a
// near-miss here is a real defect, not rounding noise.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/kernels/kernels.h"

namespace mach::tensor::kernels {
namespace {

std::vector<float> random_vec(std::size_t n, common::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Sprinkles exact zeros so the reference's `if (aval == 0.0f) continue;`
/// fast path is exercised (the blocked kernels are branch-free; 0*b adds
/// must be value-identical to skipping).
void sprinkle_zeros(std::vector<float>& v, common::Rng& rng) {
  for (auto& x : v) {
    if (rng.uniform_index(4) == 0) x = 0.0f;
  }
}

struct GemmCase {
  std::size_t m, k, n;
};

std::vector<GemmCase> gemm_cases() {
  std::vector<GemmCase> cases = {
      // Degenerate / tiny.
      {1, 1, 1},
      {1, 5, 9},
      {7, 1, 3},  // k = 1
      // Off-by-one around the register tile (kMR=4, kNR=8).
      {kMR - 1, 3, kNR - 1},
      {kMR + 1, 17, kNR + 1},
      {2 * kMR, 5, 2 * kNR},
      // Around the cache panels (kKC=256, kMC=64, kNC=256).
      {kMC, kKC, kNC},
      {kMC + 1, kKC + 1, 13},
      {3, kKC + 7, kNC + 9},
      {257, 1, 8},
      // Tall / wide / skinny.
      {80, 3, 2},
      {2, 3, 80},
      {1, 300, 1},
      // Paper-shaped layers (MNIST cnn2 + CIFAR cnn3 conv/dense GEMMs).
      {8, 9, 784},
      {16, 72, 196},
      {32, 784, 32},
      {8, 27, 1024},
      {16, 72, 256},
      {32, 144, 64},
      {32, 512, 64},
  };
  common::Rng rng(20240806);
  for (int i = 0; i < 40; ++i) {
    cases.push_back({rng.uniform_index(80) + 1, rng.uniform_index(80) + 1,
                     rng.uniform_index(80) + 1});
  }
  return cases;
}

TEST(KernelEquivalence, GemmNnExact) {
  common::Rng rng(1);
  for (const auto& c : gemm_cases()) {
    for (bool accumulate : {false, true}) {
      auto a = random_vec(c.m * c.k, rng);
      auto b = random_vec(c.k * c.n, rng);
      sprinkle_zeros(a, rng);
      auto c_ref = random_vec(c.m * c.n, rng);
      auto c_blk = c_ref;
      ref::gemm_nn({a.data(), c.m, c.k}, {b.data(), c.k, c.n},
                   {c_ref.data(), c.m, c.n}, accumulate);
      gemm_nn({a.data(), c.m, c.k}, {b.data(), c.k, c.n},
              {c_blk.data(), c.m, c.n}, accumulate);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_blk[i], c_ref[i])
            << "m=" << c.m << " k=" << c.k << " n=" << c.n
            << " accumulate=" << accumulate << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, GemmNnFusedBiasExact) {
  common::Rng rng(2);
  for (const auto& c : gemm_cases()) {
    const auto a = random_vec(c.m * c.k, rng);
    const auto b = random_vec(c.k * c.n, rng);
    const auto bias_row = random_vec(c.m, rng);
    const auto bias_col = random_vec(c.n, rng);
    for (int variant = 0; variant < 3; ++variant) {
      const float* br = (variant == 0) ? bias_row.data() : nullptr;
      const float* bc = (variant == 1) ? bias_col.data() : nullptr;
      if (variant == 2) {
        br = bias_row.data();
        bc = bias_col.data();
      }
      std::vector<float> c_ref(c.m * c.n, 0.0f), c_blk(c.m * c.n, 0.0f);
      ref::gemm_nn({a.data(), c.m, c.k}, {b.data(), c.k, c.n},
                   {c_ref.data(), c.m, c.n}, false, br, bc);
      gemm_nn({a.data(), c.m, c.k}, {b.data(), c.k, c.n},
              {c_blk.data(), c.m, c.n}, false, br, bc);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_blk[i], c_ref[i])
            << "m=" << c.m << " k=" << c.k << " n=" << c.n
            << " variant=" << variant << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, GemmTnExact) {
  common::Rng rng(3);
  for (const auto& c : gemm_cases()) {
    for (bool accumulate : {false, true}) {
      auto a = random_vec(c.k * c.m, rng);  // stored [k, m]
      auto b = random_vec(c.k * c.n, rng);
      sprinkle_zeros(a, rng);
      auto c_ref = random_vec(c.m * c.n, rng);
      auto c_blk = c_ref;
      ref::gemm_tn({a.data(), c.k, c.m}, {b.data(), c.k, c.n},
                   {c_ref.data(), c.m, c.n}, accumulate);
      gemm_tn({a.data(), c.k, c.m}, {b.data(), c.k, c.n},
              {c_blk.data(), c.m, c.n}, accumulate);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_blk[i], c_ref[i])
            << "m=" << c.m << " k=" << c.k << " n=" << c.n
            << " accumulate=" << accumulate << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, GemmNtExact) {
  common::Rng rng(4);
  for (const auto& c : gemm_cases()) {
    for (bool accumulate : {false, true}) {
      auto a = random_vec(c.m * c.k, rng);
      auto b = random_vec(c.n * c.k, rng);  // stored [n, k]
      sprinkle_zeros(a, rng);
      auto c_ref = random_vec(c.m * c.n, rng);
      auto c_blk = c_ref;
      ref::gemm_nt({a.data(), c.m, c.k}, {b.data(), c.n, c.k},
                   {c_ref.data(), c.m, c.n}, accumulate);
      gemm_nt({a.data(), c.m, c.k}, {b.data(), c.n, c.k},
              {c_blk.data(), c.m, c.n}, accumulate);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_blk[i], c_ref[i])
            << "m=" << c.m << " k=" << c.k << " n=" << c.n
            << " accumulate=" << accumulate << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, Im2ColCol2ImExact) {
  common::Rng rng(5);
  for (std::size_t kernel : {1u, 3u, 5u}) {
    for (std::size_t pad : {0u, 1u, 2u}) {
      for (std::size_t stride : {1u, 2u}) {
        for (std::size_t hw : {4u, 7u, 12u}) {
          const std::size_t channels = 3;
          if (hw + 2 * pad < kernel) continue;
          const std::size_t oh = (hw + 2 * pad - kernel) / stride + 1;
          const std::size_t ncols = oh * oh;
          const std::size_t rows = channels * kernel * kernel;
          const auto image = random_vec(channels * hw * hw, rng);

          // Poison the destination: im2col must overwrite every element.
          std::vector<float> cols_ref(rows * ncols, -7.5f);
          std::vector<float> cols_blk(rows * ncols, 7.5f);
          ref::im2col(image.data(), channels, hw, hw, kernel, pad, stride,
                      cols_ref.data());
          im2col(image.data(), channels, hw, hw, kernel, pad, stride,
                 cols_blk.data());
          for (std::size_t i = 0; i < cols_ref.size(); ++i) {
            ASSERT_EQ(cols_blk[i], cols_ref[i])
                << "kernel=" << kernel << " pad=" << pad
                << " stride=" << stride << " hw=" << hw << " i=" << i;
          }

          const auto gcols = random_vec(rows * ncols, rng);
          // col2im accumulates into a caller-zeroed image; seed both with
          // the same nonzero values to check pure accumulation too.
          auto gimg_ref = random_vec(channels * hw * hw, rng);
          auto gimg_blk = gimg_ref;
          ref::col2im(gcols.data(), channels, hw, hw, kernel, pad, stride,
                      gimg_ref.data());
          col2im(gcols.data(), channels, hw, hw, kernel, pad, stride,
                 gimg_blk.data());
          for (std::size_t i = 0; i < gimg_ref.size(); ++i) {
            ASSERT_EQ(gimg_blk[i], gimg_ref[i])
                << "kernel=" << kernel << " pad=" << pad
                << " stride=" << stride << " hw=" << hw << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(KernelEquivalence, ElementwiseExact) {
  common::Rng rng(6);
  const std::size_t n = 1037;  // non-multiple of any vector width
  const auto x = random_vec(n, rng);
  const auto y0 = random_vec(n, rng);

  std::vector<float> got(n), want(n);
  relu(n, x.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] = x[i] > 0.0f ? x[i] : 0.0f;
  EXPECT_EQ(got, want);

  relu_bwd(n, x.data(), y0.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] = x[i] > 0.0f ? y0[i] : 0.0f;
  EXPECT_EQ(got, want);

  got = y0;
  want = y0;
  axpy(n, 0.37f, x.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] += 0.37f * x[i];
  EXPECT_EQ(got, want);

  const auto base = random_vec(n, rng);
  got = y0;
  want = y0;
  axpy_delta(n, -1.25f, x.data(), base.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] += -1.25f * (x[i] - base[i]);
  EXPECT_EQ(got, want);

  got = y0;
  want = y0;
  scale(n, 0.81f, got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] *= 0.81f;
  EXPECT_EQ(got, want);

  scale_copy(n, -0.5f, x.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] = -0.5f * x[i];
  EXPECT_EQ(got, want);

  got = y0;
  want = y0;
  vadd(n, x.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) want[i] = y0[i] + x[i];
  EXPECT_EQ(got, want);
}

TEST(KernelEquivalence, ReductionsMatchStrictOrderChains) {
  common::Rng rng(7);
  const std::size_t n = 517;
  const auto x = random_vec(n, rng);
  const auto y = random_vec(n, rng);

  double want = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    want += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  EXPECT_EQ(dot(n, x.data(), y.data()), want);

  want = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    want += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  EXPECT_EQ(squared_norm(n, x.data()), want);

  const std::size_t m = 13, cols = 29;
  const auto mat = random_vec(m * cols, rng);
  std::vector<float> got_cols(cols, 1.5f), want_cols(cols, 1.5f);
  col_sums(m, cols, mat.data(), got_cols.data(), /*accumulate=*/true);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < cols; ++j) want_cols[j] += mat[i * cols + j];
  }
  EXPECT_EQ(got_cols, want_cols);

  std::vector<float> got_rows(m, -2.0f), want_rows(m, -2.0f);
  row_sums(m, cols, mat.data(), got_rows.data());
  for (std::size_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) acc += mat[i * cols + j];
    want_rows[i] += acc;
  }
  EXPECT_EQ(got_rows, want_rows);
}

}  // namespace
}  // namespace mach::tensor::kernels
