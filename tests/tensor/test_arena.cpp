#include <gtest/gtest.h>

#include "tensor/arena.h"

namespace mach::tensor {
namespace {

TEST(ScratchArena, BumpAllocationAndReset) {
  ScratchArena arena;
  arena.reserve(100);
  float* a = arena.alloc(40);
  float* b = arena.alloc(60);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(b, a + 40);
  EXPECT_EQ(arena.used(), 100u);

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  // Same storage handed out again after reset.
  EXPECT_EQ(arena.alloc(40), a);
}

TEST(ScratchArena, StatsTrackCapacityHighWaterAndGrowth) {
  ScratchArena arena;
  EXPECT_EQ(arena.stats().capacity_floats, 0u);
  EXPECT_EQ(arena.stats().grow_events, 0u);

  arena.reserve(64);
  EXPECT_EQ(arena.stats().capacity_floats, 64u);
  EXPECT_EQ(arena.stats().grow_events, 1u);

  // Re-reserving within capacity is not a grow event.
  arena.reserve(32);
  EXPECT_EQ(arena.stats().grow_events, 1u);

  arena.alloc(48);
  EXPECT_EQ(arena.stats().high_water_floats, 48u);
  arena.reset();
  arena.alloc(20);
  EXPECT_EQ(arena.stats().high_water_floats, 48u);  // high-water is sticky

  // alloc beyond capacity grows on demand (and counts it).
  arena.reset();
  arena.alloc(200);
  EXPECT_EQ(arena.stats().grow_events, 2u);
  EXPECT_GE(arena.stats().capacity_floats, 200u);
  EXPECT_EQ(arena.stats().high_water_floats, 200u);
}

TEST(ScratchArena, WarmSteadyStateNeverGrows) {
  ScratchArena arena;
  arena.reserve(256);
  const auto grows = arena.stats().grow_events;
  for (int step = 0; step < 100; ++step) {
    arena.reset();
    arena.reserve(256);
    arena.alloc(128);
    arena.alloc(128);
  }
  EXPECT_EQ(arena.stats().grow_events, grows);
}

}  // namespace
}  // namespace mach::tensor
