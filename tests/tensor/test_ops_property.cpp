// Parameterised property sweeps: the optimised kernels must match naive
// references across a grid of shapes, and algebraic identities must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "tensor/ops.h"

namespace mach::tensor {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, common::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

Tensor naive_gemm(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a.at2(i, p) * b.at2(p, j);
      c.at2(i, j) = acc;
    }
  }
  return c;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::uint64_t>> {};

TEST_P(GemmShapes, AllVariantsMatchNaive) {
  const auto [m, k, n, seed] = GetParam();
  common::Rng rng(seed);
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const Tensor expected = naive_gemm(a, b);

  Tensor c({m, n});
  gemm(a, b, c);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-4f) << "gemm i=" << i;
  }

  // A^T path: feed a stored transposed and expect the same product.
  Tensor at({k, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at.at2(p, i) = a.at2(i, p);
  }
  Tensor c2({m, n});
  gemm_at_b(at, b, c2);
  for (std::size_t i = 0; i < c2.numel(); ++i) {
    ASSERT_NEAR(c2[i], expected[i], 1e-4f) << "gemm_at_b i=" << i;
  }

  // B^T path.
  Tensor bt({n, k});
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) bt.at2(j, p) = b.at2(p, j);
  }
  Tensor c3({m, n});
  gemm_a_bt(a, bt, c3);
  for (std::size_t i = 0; i < c3.numel(); ++i) {
    ASSERT_NEAR(c3[i], expected[i], 1e-4f) << "gemm_a_bt i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, GemmShapes,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{5},
                                         std::size_t{16}),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{9}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2})));

class ConvShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(ConvShapes, Im2ColAdjointProperty) {
  const auto [channels, size, kernel, pad] = GetParam();
  common::Rng rng(channels * 100 + size);
  ConvSpec spec{.in_channels = channels, .out_channels = 1, .kernel = kernel,
                .pad = pad, .stride = 1};
  if (size + 2 * pad < kernel) GTEST_SKIP() << "kernel larger than padded input";
  const Tensor x = random_tensor({1, channels, size, size}, rng);
  Tensor cols;
  im2col(x, 0, spec, cols);
  const Tensor y = random_tensor(cols.shape(), rng);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  Tensor back({1, channels, size, size});
  col2im(y, 0, spec, back);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, ConvShapes,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{3}),
                       ::testing::Values(std::size_t{4}, std::size_t{7}),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{5}),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2})));

class SoftmaxShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SoftmaxShapes, RowsNormalisedAndShiftInvariant) {
  const auto [rows, cols] = GetParam();
  common::Rng rng(rows * 31 + cols);
  const Tensor logits = random_tensor({rows, cols}, rng);
  Tensor probs({rows, cols});
  softmax(logits, probs);
  for (std::size_t r = 0; r < rows; ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) total += probs.at2(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  // Shift invariance: softmax(x + c) == softmax(x).
  Tensor shifted = logits;
  for (auto& v : shifted.flat()) v += 11.25f;
  Tensor probs2({rows, cols});
  softmax(shifted, probs2);
  for (std::size_t i = 0; i < probs.numel(); ++i) {
    EXPECT_NEAR(probs[i], probs2[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, SoftmaxShapes,
                         ::testing::Combine(::testing::Values(std::size_t{1},
                                                              std::size_t{7}),
                                            ::testing::Values(std::size_t{2},
                                                              std::size_t{10},
                                                              std::size_t{33})));

}  // namespace
}  // namespace mach::tensor
