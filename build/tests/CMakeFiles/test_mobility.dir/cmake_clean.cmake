file(REMOVE_RECURSE
  "CMakeFiles/test_mobility.dir/mobility/test_predictor.cpp.o"
  "CMakeFiles/test_mobility.dir/mobility/test_predictor.cpp.o.d"
  "CMakeFiles/test_mobility.dir/mobility/test_schedule.cpp.o"
  "CMakeFiles/test_mobility.dir/mobility/test_schedule.cpp.o.d"
  "CMakeFiles/test_mobility.dir/mobility/test_stations.cpp.o"
  "CMakeFiles/test_mobility.dir/mobility/test_stations.cpp.o.d"
  "CMakeFiles/test_mobility.dir/mobility/test_telecom.cpp.o"
  "CMakeFiles/test_mobility.dir/mobility/test_telecom.cpp.o.d"
  "CMakeFiles/test_mobility.dir/mobility/test_trace.cpp.o"
  "CMakeFiles/test_mobility.dir/mobility/test_trace.cpp.o.d"
  "CMakeFiles/test_mobility.dir/mobility/test_trace_stats.cpp.o"
  "CMakeFiles/test_mobility.dir/mobility/test_trace_stats.cpp.o.d"
  "test_mobility"
  "test_mobility.pdb"
  "test_mobility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
