
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mobility/test_predictor.cpp" "tests/CMakeFiles/test_mobility.dir/mobility/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_mobility.dir/mobility/test_predictor.cpp.o.d"
  "/root/repo/tests/mobility/test_schedule.cpp" "tests/CMakeFiles/test_mobility.dir/mobility/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/test_mobility.dir/mobility/test_schedule.cpp.o.d"
  "/root/repo/tests/mobility/test_stations.cpp" "tests/CMakeFiles/test_mobility.dir/mobility/test_stations.cpp.o" "gcc" "tests/CMakeFiles/test_mobility.dir/mobility/test_stations.cpp.o.d"
  "/root/repo/tests/mobility/test_telecom.cpp" "tests/CMakeFiles/test_mobility.dir/mobility/test_telecom.cpp.o" "gcc" "tests/CMakeFiles/test_mobility.dir/mobility/test_telecom.cpp.o.d"
  "/root/repo/tests/mobility/test_trace.cpp" "tests/CMakeFiles/test_mobility.dir/mobility/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_mobility.dir/mobility/test_trace.cpp.o.d"
  "/root/repo/tests/mobility/test_trace_stats.cpp" "tests/CMakeFiles/test_mobility.dir/mobility/test_trace_stats.cpp.o" "gcc" "tests/CMakeFiles/test_mobility.dir/mobility/test_trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/mach_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/hfl/CMakeFiles/mach_hfl.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/mach_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mach_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mach_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mach_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mach_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
