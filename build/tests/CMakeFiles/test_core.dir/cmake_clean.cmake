file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_bound.cpp.o"
  "CMakeFiles/test_core.dir/core/test_bound.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_global_mach.cpp.o"
  "CMakeFiles/test_core.dir/core/test_global_mach.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mach.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mach.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_transfer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_transfer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ucb.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ucb.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
