file(REMOVE_RECURSE
  "CMakeFiles/test_hfl.dir/hfl/test_cost_confusion.cpp.o"
  "CMakeFiles/test_hfl.dir/hfl/test_cost_confusion.cpp.o.d"
  "CMakeFiles/test_hfl.dir/hfl/test_experiment.cpp.o"
  "CMakeFiles/test_hfl.dir/hfl/test_experiment.cpp.o.d"
  "CMakeFiles/test_hfl.dir/hfl/test_integration_extended.cpp.o"
  "CMakeFiles/test_hfl.dir/hfl/test_integration_extended.cpp.o.d"
  "CMakeFiles/test_hfl.dir/hfl/test_metrics.cpp.o"
  "CMakeFiles/test_hfl.dir/hfl/test_metrics.cpp.o.d"
  "CMakeFiles/test_hfl.dir/hfl/test_simulator.cpp.o"
  "CMakeFiles/test_hfl.dir/hfl/test_simulator.cpp.o.d"
  "test_hfl"
  "test_hfl.pdb"
  "test_hfl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
