# Empty compiler generated dependencies file for test_hfl.
# This may be replaced when dependencies are built.
