file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_extras.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_extras.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_gradcheck.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_gradcheck.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layernorm.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layernorm.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
