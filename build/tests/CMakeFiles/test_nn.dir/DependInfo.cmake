
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_extras.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_extras.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_extras.cpp.o.d"
  "/root/repo/tests/nn/test_gradcheck.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_gradcheck.cpp.o.d"
  "/root/repo/tests/nn/test_layernorm.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_layernorm.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layernorm.cpp.o.d"
  "/root/repo/tests/nn/test_layers.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "/root/repo/tests/nn/test_model.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/mach_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/hfl/CMakeFiles/mach_hfl.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/mach_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mach_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mach_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mach_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mach_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
