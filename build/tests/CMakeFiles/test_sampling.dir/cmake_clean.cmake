file(REMOVE_RECURSE
  "CMakeFiles/test_sampling.dir/sampling/test_baselines.cpp.o"
  "CMakeFiles/test_sampling.dir/sampling/test_baselines.cpp.o.d"
  "CMakeFiles/test_sampling.dir/sampling/test_budget.cpp.o"
  "CMakeFiles/test_sampling.dir/sampling/test_budget.cpp.o.d"
  "CMakeFiles/test_sampling.dir/sampling/test_extended.cpp.o"
  "CMakeFiles/test_sampling.dir/sampling/test_extended.cpp.o.d"
  "test_sampling"
  "test_sampling.pdb"
  "test_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
