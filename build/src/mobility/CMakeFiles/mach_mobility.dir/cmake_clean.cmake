file(REMOVE_RECURSE
  "CMakeFiles/mach_mobility.dir/geo.cpp.o"
  "CMakeFiles/mach_mobility.dir/geo.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/mobility_model.cpp.o"
  "CMakeFiles/mach_mobility.dir/mobility_model.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/predictor.cpp.o"
  "CMakeFiles/mach_mobility.dir/predictor.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/schedule.cpp.o"
  "CMakeFiles/mach_mobility.dir/schedule.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/stations.cpp.o"
  "CMakeFiles/mach_mobility.dir/stations.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/telecom.cpp.o"
  "CMakeFiles/mach_mobility.dir/telecom.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/trace.cpp.o"
  "CMakeFiles/mach_mobility.dir/trace.cpp.o.d"
  "CMakeFiles/mach_mobility.dir/trace_stats.cpp.o"
  "CMakeFiles/mach_mobility.dir/trace_stats.cpp.o.d"
  "libmach_mobility.a"
  "libmach_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
