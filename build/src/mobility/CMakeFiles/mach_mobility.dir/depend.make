# Empty dependencies file for mach_mobility.
# This may be replaced when dependencies are built.
