
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/geo.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/geo.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/geo.cpp.o.d"
  "/root/repo/src/mobility/mobility_model.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/mobility_model.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/mobility_model.cpp.o.d"
  "/root/repo/src/mobility/predictor.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/predictor.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/predictor.cpp.o.d"
  "/root/repo/src/mobility/schedule.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/schedule.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/schedule.cpp.o.d"
  "/root/repo/src/mobility/stations.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/stations.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/stations.cpp.o.d"
  "/root/repo/src/mobility/telecom.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/telecom.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/telecom.cpp.o.d"
  "/root/repo/src/mobility/trace.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/trace.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/trace.cpp.o.d"
  "/root/repo/src/mobility/trace_stats.cpp" "src/mobility/CMakeFiles/mach_mobility.dir/trace_stats.cpp.o" "gcc" "src/mobility/CMakeFiles/mach_mobility.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mach_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
