file(REMOVE_RECURSE
  "libmach_mobility.a"
)
