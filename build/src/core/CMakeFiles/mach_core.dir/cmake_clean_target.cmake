file(REMOVE_RECURSE
  "libmach_core.a"
)
