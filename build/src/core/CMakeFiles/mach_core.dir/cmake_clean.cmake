file(REMOVE_RECURSE
  "CMakeFiles/mach_core.dir/bound.cpp.o"
  "CMakeFiles/mach_core.dir/bound.cpp.o.d"
  "CMakeFiles/mach_core.dir/global_mach.cpp.o"
  "CMakeFiles/mach_core.dir/global_mach.cpp.o.d"
  "CMakeFiles/mach_core.dir/mach.cpp.o"
  "CMakeFiles/mach_core.dir/mach.cpp.o.d"
  "CMakeFiles/mach_core.dir/registry.cpp.o"
  "CMakeFiles/mach_core.dir/registry.cpp.o.d"
  "CMakeFiles/mach_core.dir/transfer.cpp.o"
  "CMakeFiles/mach_core.dir/transfer.cpp.o.d"
  "CMakeFiles/mach_core.dir/ucb.cpp.o"
  "CMakeFiles/mach_core.dir/ucb.cpp.o.d"
  "libmach_core.a"
  "libmach_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
