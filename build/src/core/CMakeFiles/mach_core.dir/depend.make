# Empty dependencies file for mach_core.
# This may be replaced when dependencies are built.
