file(REMOVE_RECURSE
  "CMakeFiles/mach_data.dir/dataset.cpp.o"
  "CMakeFiles/mach_data.dir/dataset.cpp.o.d"
  "CMakeFiles/mach_data.dir/io.cpp.o"
  "CMakeFiles/mach_data.dir/io.cpp.o.d"
  "CMakeFiles/mach_data.dir/partition.cpp.o"
  "CMakeFiles/mach_data.dir/partition.cpp.o.d"
  "CMakeFiles/mach_data.dir/synthetic.cpp.o"
  "CMakeFiles/mach_data.dir/synthetic.cpp.o.d"
  "libmach_data.a"
  "libmach_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
