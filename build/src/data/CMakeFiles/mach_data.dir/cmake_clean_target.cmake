file(REMOVE_RECURSE
  "libmach_data.a"
)
