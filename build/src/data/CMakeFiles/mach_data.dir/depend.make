# Empty dependencies file for mach_data.
# This may be replaced when dependencies are built.
