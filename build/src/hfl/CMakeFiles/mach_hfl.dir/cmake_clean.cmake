file(REMOVE_RECURSE
  "CMakeFiles/mach_hfl.dir/experiment.cpp.o"
  "CMakeFiles/mach_hfl.dir/experiment.cpp.o.d"
  "CMakeFiles/mach_hfl.dir/metrics.cpp.o"
  "CMakeFiles/mach_hfl.dir/metrics.cpp.o.d"
  "CMakeFiles/mach_hfl.dir/simulator.cpp.o"
  "CMakeFiles/mach_hfl.dir/simulator.cpp.o.d"
  "libmach_hfl.a"
  "libmach_hfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_hfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
