# Empty dependencies file for mach_hfl.
# This may be replaced when dependencies are built.
