
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hfl/experiment.cpp" "src/hfl/CMakeFiles/mach_hfl.dir/experiment.cpp.o" "gcc" "src/hfl/CMakeFiles/mach_hfl.dir/experiment.cpp.o.d"
  "/root/repo/src/hfl/metrics.cpp" "src/hfl/CMakeFiles/mach_hfl.dir/metrics.cpp.o" "gcc" "src/hfl/CMakeFiles/mach_hfl.dir/metrics.cpp.o.d"
  "/root/repo/src/hfl/simulator.cpp" "src/hfl/CMakeFiles/mach_hfl.dir/simulator.cpp.o" "gcc" "src/hfl/CMakeFiles/mach_hfl.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mach_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mach_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/mach_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mach_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mach_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
