file(REMOVE_RECURSE
  "libmach_hfl.a"
)
