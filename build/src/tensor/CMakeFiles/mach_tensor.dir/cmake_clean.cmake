file(REMOVE_RECURSE
  "CMakeFiles/mach_tensor.dir/ops.cpp.o"
  "CMakeFiles/mach_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/mach_tensor.dir/tensor.cpp.o"
  "CMakeFiles/mach_tensor.dir/tensor.cpp.o.d"
  "libmach_tensor.a"
  "libmach_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
