# Empty dependencies file for mach_tensor.
# This may be replaced when dependencies are built.
