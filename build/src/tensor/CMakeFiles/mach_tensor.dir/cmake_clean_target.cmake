file(REMOVE_RECURSE
  "libmach_tensor.a"
)
