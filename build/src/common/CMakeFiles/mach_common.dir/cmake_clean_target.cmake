file(REMOVE_RECURSE
  "libmach_common.a"
)
