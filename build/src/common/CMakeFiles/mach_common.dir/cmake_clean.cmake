file(REMOVE_RECURSE
  "CMakeFiles/mach_common.dir/cli.cpp.o"
  "CMakeFiles/mach_common.dir/cli.cpp.o.d"
  "CMakeFiles/mach_common.dir/log.cpp.o"
  "CMakeFiles/mach_common.dir/log.cpp.o.d"
  "CMakeFiles/mach_common.dir/rng.cpp.o"
  "CMakeFiles/mach_common.dir/rng.cpp.o.d"
  "CMakeFiles/mach_common.dir/stats.cpp.o"
  "CMakeFiles/mach_common.dir/stats.cpp.o.d"
  "CMakeFiles/mach_common.dir/table.cpp.o"
  "CMakeFiles/mach_common.dir/table.cpp.o.d"
  "libmach_common.a"
  "libmach_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
