# Empty dependencies file for mach_common.
# This may be replaced when dependencies are built.
