file(REMOVE_RECURSE
  "libmach_sampling.a"
)
