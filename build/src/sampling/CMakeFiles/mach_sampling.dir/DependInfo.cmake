
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/baselines.cpp" "src/sampling/CMakeFiles/mach_sampling.dir/baselines.cpp.o" "gcc" "src/sampling/CMakeFiles/mach_sampling.dir/baselines.cpp.o.d"
  "/root/repo/src/sampling/budget.cpp" "src/sampling/CMakeFiles/mach_sampling.dir/budget.cpp.o" "gcc" "src/sampling/CMakeFiles/mach_sampling.dir/budget.cpp.o.d"
  "/root/repo/src/sampling/extended.cpp" "src/sampling/CMakeFiles/mach_sampling.dir/extended.cpp.o" "gcc" "src/sampling/CMakeFiles/mach_sampling.dir/extended.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hfl/CMakeFiles/mach_hfl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mach_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mach_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mach_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mach_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/mach_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
