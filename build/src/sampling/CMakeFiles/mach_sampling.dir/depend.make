# Empty dependencies file for mach_sampling.
# This may be replaced when dependencies are built.
