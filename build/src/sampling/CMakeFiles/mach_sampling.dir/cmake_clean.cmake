file(REMOVE_RECURSE
  "CMakeFiles/mach_sampling.dir/baselines.cpp.o"
  "CMakeFiles/mach_sampling.dir/baselines.cpp.o.d"
  "CMakeFiles/mach_sampling.dir/budget.cpp.o"
  "CMakeFiles/mach_sampling.dir/budget.cpp.o.d"
  "CMakeFiles/mach_sampling.dir/extended.cpp.o"
  "CMakeFiles/mach_sampling.dir/extended.cpp.o.d"
  "libmach_sampling.a"
  "libmach_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
