# Empty dependencies file for mach_nn.
# This may be replaced when dependencies are built.
