file(REMOVE_RECURSE
  "libmach_nn.a"
)
