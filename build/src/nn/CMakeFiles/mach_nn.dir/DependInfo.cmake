
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/mach_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/mach_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/mach_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/mach_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/mach_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/factory.cpp" "src/nn/CMakeFiles/mach_nn.dir/factory.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/factory.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/nn/CMakeFiles/mach_nn.dir/layernorm.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/layernorm.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/mach_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/mach_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/mach_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/mach_nn.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/mach_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mach_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
