file(REMOVE_RECURSE
  "CMakeFiles/mach_nn.dir/activations.cpp.o"
  "CMakeFiles/mach_nn.dir/activations.cpp.o.d"
  "CMakeFiles/mach_nn.dir/adam.cpp.o"
  "CMakeFiles/mach_nn.dir/adam.cpp.o.d"
  "CMakeFiles/mach_nn.dir/conv2d.cpp.o"
  "CMakeFiles/mach_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/mach_nn.dir/dense.cpp.o"
  "CMakeFiles/mach_nn.dir/dense.cpp.o.d"
  "CMakeFiles/mach_nn.dir/dropout.cpp.o"
  "CMakeFiles/mach_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/mach_nn.dir/factory.cpp.o"
  "CMakeFiles/mach_nn.dir/factory.cpp.o.d"
  "CMakeFiles/mach_nn.dir/layernorm.cpp.o"
  "CMakeFiles/mach_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/mach_nn.dir/model.cpp.o"
  "CMakeFiles/mach_nn.dir/model.cpp.o.d"
  "CMakeFiles/mach_nn.dir/serialize.cpp.o"
  "CMakeFiles/mach_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/mach_nn.dir/sgd.cpp.o"
  "CMakeFiles/mach_nn.dir/sgd.cpp.o.d"
  "libmach_nn.a"
  "libmach_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
