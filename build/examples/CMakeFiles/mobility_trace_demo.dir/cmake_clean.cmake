file(REMOVE_RECURSE
  "CMakeFiles/mobility_trace_demo.dir/mobility_trace_demo.cpp.o"
  "CMakeFiles/mobility_trace_demo.dir/mobility_trace_demo.cpp.o.d"
  "mobility_trace_demo"
  "mobility_trace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_trace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
