# Empty compiler generated dependencies file for mobility_trace_demo.
# This may be replaced when dependencies are built.
