# Empty dependencies file for custom_sampler.
# This may be replaced when dependencies are built.
