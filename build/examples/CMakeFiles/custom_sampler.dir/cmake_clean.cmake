file(REMOVE_RECURSE
  "CMakeFiles/custom_sampler.dir/custom_sampler.cpp.o"
  "CMakeFiles/custom_sampler.dir/custom_sampler.cpp.o.d"
  "custom_sampler"
  "custom_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
