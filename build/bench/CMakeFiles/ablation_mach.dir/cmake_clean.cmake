file(REMOVE_RECURSE
  "CMakeFiles/ablation_mach.dir/ablation_mach.cpp.o"
  "CMakeFiles/ablation_mach.dir/ablation_mach.cpp.o.d"
  "ablation_mach"
  "ablation_mach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
