# Empty dependencies file for ablation_mach.
# This may be replaced when dependencies are built.
