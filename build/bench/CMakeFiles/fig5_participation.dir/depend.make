# Empty dependencies file for fig5_participation.
# This may be replaced when dependencies are built.
