file(REMOVE_RECURSE
  "CMakeFiles/fig5_participation.dir/fig5_participation.cpp.o"
  "CMakeFiles/fig5_participation.dir/fig5_participation.cpp.o.d"
  "fig5_participation"
  "fig5_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
