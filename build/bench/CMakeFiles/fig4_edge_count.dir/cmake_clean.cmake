file(REMOVE_RECURSE
  "CMakeFiles/fig4_edge_count.dir/fig4_edge_count.cpp.o"
  "CMakeFiles/fig4_edge_count.dir/fig4_edge_count.cpp.o.d"
  "fig4_edge_count"
  "fig4_edge_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_edge_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
