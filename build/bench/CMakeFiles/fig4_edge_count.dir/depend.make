# Empty dependencies file for fig4_edge_count.
# This may be replaced when dependencies are built.
