# Empty compiler generated dependencies file for table1_local_epochs.
# This may be replaced when dependencies are built.
