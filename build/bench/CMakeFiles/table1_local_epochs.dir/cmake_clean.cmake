file(REMOVE_RECURSE
  "CMakeFiles/table1_local_epochs.dir/table1_local_epochs.cpp.o"
  "CMakeFiles/table1_local_epochs.dir/table1_local_epochs.cpp.o.d"
  "table1_local_epochs"
  "table1_local_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_local_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
